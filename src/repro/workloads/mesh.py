"""The mesh-communication application topology (Fig. 2 right, Section IV-C).

The paper's mesh workload consists of disjoint host-level diversity zones
of 5 VMs each (topology size 25..200 VMs = 5..40 zones; the homogeneous
sweep uses 35..280 = 7..56 zones). For each zone, around 80% of the other
zones are randomly selected and communication links are established
between the VMs of the two zones; we link the i-th VM of one zone to the
``(i + o)``-th VM of the other, with a random per-pair offset ``o`` --
giving every VM roughly ``0.8 * (zones - 1)`` links while keeping the
pairing irregular (an aligned pairing would make the mesh trivially
partitionable into co-locatable columns, which the paper's bandwidth
numbers rule out). This is what makes the mesh far more bandwidth-hungry
than the multi-tier workload (Fig. 10).

Requirement classes are assigned per zone (zone-mates identical), using
the Table III shares in the heterogeneous regime. A link's bandwidth is
the smaller of its endpoints' class bandwidths. All randomness flows
through an explicit seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level
from repro.errors import TopologyError
from repro.workloads.requirements import RequirementMix, VMSpec, mix_for


def _zone_specs(mix: RequirementMix, zones: int) -> List[VMSpec]:
    quotas = [share * zones for share, _ in mix.classes]
    counts = [int(q) for q in quotas]
    order = sorted(
        range(len(quotas)), key=lambda i: quotas[i] - counts[i], reverse=True
    )
    for i in range(zones - sum(counts)):
        counts[order[i % len(order)]] += 1
    specs: List[VMSpec] = []
    for count, (_, spec) in zip(counts, mix.classes):
        specs.extend([spec] * count)
    return specs[:zones]


def build_mesh(
    total_vms: int = 25,
    vms_per_zone: int = 5,
    link_fraction: float = 0.8,
    heterogeneous: bool = True,
    zone_level: Level = Level.HOST,
    seed: int = 0,
    name: Optional[str] = None,
    mix: Optional[RequirementMix] = None,
) -> ApplicationTopology:
    """Build a mesh-communication topology of ``total_vms`` VMs.

    Args:
        total_vms: total VM count; must be divisible by ``vms_per_zone``.
        vms_per_zone: diversity-zone size (the paper uses 5).
        link_fraction: fraction of *other* zones each zone links to
            (the paper uses ~80%).
        heterogeneous: Table III mix per zone vs. the homogeneous spec.
        zone_level: separation level of the zones (paper: host).
        seed: seed for the random zone-pair selection.
        name: topology name; defaults to a descriptive one.
        mix: override the requirement mix entirely.
    """
    if vms_per_zone <= 0:
        raise TopologyError("vms_per_zone must be positive")
    if total_vms % vms_per_zone != 0:
        raise TopologyError(
            f"total_vms ({total_vms}) must be divisible by vms_per_zone "
            f"({vms_per_zone})"
        )
    num_zones = total_vms // vms_per_zone
    chosen_mix = mix or mix_for(heterogeneous)
    specs = _zone_specs(chosen_mix, num_zones)
    regime = "het" if heterogeneous else "hom"
    topo = ApplicationTopology(name or f"mesh-{total_vms}-{regime}")
    rng = random.Random(seed)

    zone_members: List[List[str]] = []
    for z in range(num_zones):
        spec = specs[z]
        members = []
        for i in range(vms_per_zone):
            vm_name = f"zone{z + 1}-vm{i + 1}"
            topo.add_vm(vm_name, spec.vcpus, spec.mem_gb)
            members.append(vm_name)
        zone_members.append(members)
        if vms_per_zone >= 2:
            topo.add_zone(f"zone{z + 1}", zone_level, members)

    linked = set()
    for z in range(num_zones):
        others = [o for o in range(num_zones) if o != z]
        rng.shuffle(others)
        peer_count = max(1, round(link_fraction * len(others)))
        for other in others[:peer_count]:
            pair = (min(z, other), max(z, other))
            if pair in linked:
                continue
            linked.add(pair)
            bw = min(specs[z].link_bw_mbps, specs[other].link_bw_mbps)
            offset = rng.randrange(vms_per_zone)
            for i, a in enumerate(zone_members[z]):
                b = zone_members[other][(i + offset) % vms_per_zone]
                topo.connect(a, b, bw)
    return topo
