"""The QFS cloud-storage application topology (Fig. 5, Section IV-A).

The paper's realistic experiment deploys a Quantcast File System cluster:
chunk-server VMs storing file chunks on disk volumes, a meta-server VM
keeping chunk locations, and a client VM running a file-system benchmark.
Figure 5 gives the resource vocabulary:

* small VM: 2 vCPUs / 2 GB; large VM: 4 vCPUs / 8 GB;
* small volume: 10 GB; large volume: 120 GB;
* high-bandwidth link: 100 Mbps; low-bandwidth link: 10 Mbps.

The default topology matches the paper's headline counts -- 1 meta server,
1 client, 12 chunk servers, and 15 disk volumes:

* the client is a large VM (it drives the benchmark) with a small scratch
  volume;
* the meta server is a small VM with two small volumes (metadata +
  transaction log);
* each chunk server is a small VM with one large chunk volume attached by
  a high-bandwidth link;
* the client talks to every chunk server over a high-bandwidth pipe (bulk
  data) and to the meta server over a low-bandwidth pipe (metadata);
* each chunk server also exchanges low-bandwidth heartbeats with the meta
  server;
* the 12 chunk volumes form a host-level diversity zone -- the paper's
  "12 disk volumes must be placed on 12 separate disks" reliability
  requirement (the testbed has one disk per host, so disk and host
  diversity coincide).
"""

from __future__ import annotations


from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level

#: Fig. 5 resource vocabulary.
SMALL_VM = (2, 2)
LARGE_VM = (4, 8)
SMALL_VOLUME_GB = 10
LARGE_VOLUME_GB = 120
HIGH_BW_MBPS = 100
LOW_BW_MBPS = 10


def build_qfs(
    chunk_servers: int = 12,
    name: str = "qfs",
    diversity_level: Level = Level.HOST,
    meta_volumes: int = 2,
    client_volume: bool = True,
    chunk_heartbeats: bool = True,
) -> ApplicationTopology:
    """Build the QFS application topology of Fig. 5.

    Args:
        chunk_servers: number of chunk-server VMs (the paper uses 12).
        name: topology name.
        diversity_level: separation level of the chunk-volume zone.
        meta_volumes: small volumes attached to the meta server (2 gives
            the paper's total of 15 volumes with 12 chunk servers).
        client_volume: attach a small scratch volume to the client.
        chunk_heartbeats: add low-bandwidth meta<->chunk-server links.
    """
    topo = ApplicationTopology(name)
    topo.add_vm("client", *LARGE_VM)
    topo.add_vm("meta", *SMALL_VM)
    topo.connect("client", "meta", LOW_BW_MBPS)

    if client_volume:
        topo.add_volume("client-vol", SMALL_VOLUME_GB)
        topo.connect("client", "client-vol", LOW_BW_MBPS)
    for i in range(meta_volumes):
        vol = f"meta-vol{i + 1}"
        topo.add_volume(vol, SMALL_VOLUME_GB)
        topo.connect("meta", vol, LOW_BW_MBPS)

    chunk_volume_names = []
    for i in range(chunk_servers):
        server = f"chunk{i + 1}"
        volume = f"chunk-vol{i + 1}"
        topo.add_vm(server, *SMALL_VM)
        topo.add_volume(volume, LARGE_VOLUME_GB)
        topo.connect(server, volume, HIGH_BW_MBPS)
        topo.connect("client", server, HIGH_BW_MBPS)
        if chunk_heartbeats:
            topo.connect("meta", server, LOW_BW_MBPS)
        chunk_volume_names.append(volume)

    if len(chunk_volume_names) >= 2:
        topo.add_zone(
            "chunk-volume-diversity", diversity_level, chunk_volume_names
        )
    return topo
