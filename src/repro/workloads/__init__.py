"""Workload generators for the paper's evaluation (Section IV).

* :mod:`repro.workloads.requirements` -- the heterogeneous requirement mix
  of Table III and the homogeneous baseline.
* :mod:`repro.workloads.multitier` -- the 5-tier topology (Fig. 2 left).
* :mod:`repro.workloads.mesh` -- the mesh-communication topology
  (Fig. 2 right).
* :mod:`repro.workloads.qfs` -- the QFS cloud-storage application (Fig. 5).
"""

from repro.workloads.mesh import build_mesh
from repro.workloads.multitier import build_multitier
from repro.workloads.qfs import build_qfs
from repro.workloads.requirements import (
    HETEROGENEOUS_MIX,
    HOMOGENEOUS_SPEC,
    RequirementMix,
    VMSpec,
)
from repro.workloads.vnf import DEFAULT_CHAIN, VNFStage, build_vnf_chain

__all__ = [
    "DEFAULT_CHAIN",
    "HETEROGENEOUS_MIX",
    "HOMOGENEOUS_SPEC",
    "RequirementMix",
    "VMSpec",
    "VNFStage",
    "build_mesh",
    "build_multitier",
    "build_qfs",
    "build_vnf_chain",
]
