"""The multi-tier application topology (Fig. 2 left, Section IV-C).

The paper's multi-tier workload has five tiers, each populated with 5 to 40
VMs (total size 25..200), adjacent tiers interconnected, and the VMs of
every tier split into two host-level diversity zones. Fig. 2 draws sparse
inter-tier links (each component talks to a couple of instances of the
next tier, as a load balancer chain would), so the default ``fanout`` is 2
links from each VM to the next tier; ``fanout=None`` produces a fully
bipartite variant.

Requirement classes are assigned *per tier* so that zone-mates have
identical requirements -- the assumption under which BA*'s symmetry
reduction applies (Section III-B3) and the natural reading of "web tiers
are network-intensive, database tiers compute-intensive". The Table III
shares are apportioned over tiers: with five tiers and the heterogeneous
mix, two tiers are network-intensive (1 vCPU / 100 Mbps), one balanced
(2 / 50), and two compute-intensive (4 / 10).

The bandwidth of an inter-tier link is the smaller of the two endpoint
classes' link bandwidths.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level
from repro.errors import TopologyError
from repro.workloads.requirements import RequirementMix, VMSpec, mix_for


def _tier_specs(mix: RequirementMix, tiers: int) -> List[VMSpec]:
    """Apportion the mix's classes over whole tiers (largest remainder)."""
    quotas = [share * tiers for share, _ in mix.classes]
    counts = [int(q) for q in quotas]
    order = sorted(
        range(len(quotas)), key=lambda i: quotas[i] - counts[i], reverse=True
    )
    for i in range(tiers - sum(counts)):
        counts[order[i % len(order)]] += 1
    specs: List[VMSpec] = []
    for count, (_, spec) in zip(counts, mix.classes):
        specs.extend([spec] * count)
    return specs[:tiers]


def build_multitier(
    total_vms: int = 25,
    tiers: int = 5,
    heterogeneous: bool = True,
    zones_per_tier: int = 2,
    zone_level: Level = Level.HOST,
    fanout: Optional[int] = 2,
    name: Optional[str] = None,
    mix: Optional[RequirementMix] = None,
) -> ApplicationTopology:
    """Build a multi-tier topology of ``total_vms`` VMs.

    Args:
        total_vms: total VM count; must be divisible into ``tiers`` tiers.
        tiers: number of tiers (the paper uses 5).
        heterogeneous: use the Table III mix (per tier); otherwise every VM
            is the homogeneous 2 vCPU / 2 GB / 50 Mbps spec.
        zones_per_tier: how many diversity zones each tier is split into
            (the paper uses 2 host-level zones per tier).
        zone_level: separation level of the tier zones.
        fanout: links from each VM to the next tier (wrapping); None makes
            adjacent tiers fully bipartite.
        name: topology name; defaults to a descriptive one.
        mix: override the requirement mix entirely.

    Returns:
        The generated :class:`ApplicationTopology`.
    """
    if tiers <= 0:
        raise TopologyError("tiers must be positive")
    if total_vms % tiers != 0:
        raise TopologyError(
            f"total_vms ({total_vms}) must be divisible by tiers ({tiers})"
        )
    per_tier = total_vms // tiers
    if per_tier < 1:
        raise TopologyError("each tier needs at least one VM")
    chosen_mix = mix or mix_for(heterogeneous)
    specs = _tier_specs(chosen_mix, tiers)
    regime = "het" if heterogeneous else "hom"
    topo = ApplicationTopology(
        name or f"multitier-{total_vms}-{regime}"
    )

    tier_members: List[List[str]] = []
    for t in range(tiers):
        spec = specs[t]
        members = []
        for i in range(per_tier):
            vm_name = f"tier{t + 1}-vm{i + 1}"
            topo.add_vm(vm_name, spec.vcpus, spec.mem_gb)
            members.append(vm_name)
        tier_members.append(members)
        zones = min(zones_per_tier, per_tier)
        if zones >= 1 and per_tier >= 2:
            for z in range(zones):
                zone_members = members[z::zones]
                if len(zone_members) >= 2:
                    topo.add_zone(
                        f"tier{t + 1}-zone{z + 1}", zone_level, zone_members
                    )

    for t in range(tiers - 1):
        bw = min(specs[t].link_bw_mbps, specs[t + 1].link_bw_mbps)
        lower_tier = tier_members[t + 1]
        for i, upper in enumerate(tier_members[t]):
            if fanout is None:
                peers = lower_tier
            else:
                peers = [
                    lower_tier[(i + k) % len(lower_tier)]
                    for k in range(min(fanout, len(lower_tier)))
                ]
            seen = set()
            for lower in peers:
                if lower in seen:
                    continue
                seen.add(lower)
                topo.connect(upper, lower, bw)
    return topo
