"""Virtual-network-function (VNF) chain workloads.

The paper's introduction motivates Ostro with VNFs: "firewalls, routers,
and CDN caches that are virtualized and interconnected into a logical
topology". This generator builds service chains of that shape --
``N x firewall -> N x router -> N x cache`` stages with redundant,
rack-diverse instances per stage, high-bandwidth pipes along the chain,
and cache volumes at the tail -- giving the examples and tests a second
realistic application beyond QFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level
from repro.errors import TopologyError


@dataclass(frozen=True)
class VNFStage:
    """One stage of a service chain.

    Attributes:
        name: stage name ("firewall", "router", ...).
        instances: redundant instances of the stage.
        vcpus / mem_gb: per-instance size.
        egress_bw_mbps: bandwidth of each pipe toward the next stage.
        volume_gb: per-instance backing volume (0 = none).
        diversity: separation level among the stage's instances.
    """

    name: str
    instances: int = 2
    vcpus: float = 2
    mem_gb: float = 4
    egress_bw_mbps: float = 500
    volume_gb: float = 0
    diversity: Level = Level.RACK


#: A classic chain: redundant firewalls feed routers feeding CDN caches.
DEFAULT_CHAIN: Sequence[VNFStage] = (
    VNFStage("firewall", instances=2, vcpus=2, mem_gb=4, egress_bw_mbps=800),
    VNFStage("router", instances=2, vcpus=4, mem_gb=8, egress_bw_mbps=1200),
    VNFStage(
        "cache",
        instances=2,
        vcpus=4,
        mem_gb=8,
        egress_bw_mbps=0,
        volume_gb=500,
    ),
)


def build_vnf_chain(
    stages: Optional[Sequence[VNFStage]] = None,
    name: str = "vnf-chain",
    volume_bw_mbps: float = 1500,
) -> ApplicationTopology:
    """Build a VNF service-chain topology.

    Adjacent stages are fully interconnected (every instance of a stage
    pipes to every instance of the next, as a load-balanced chain does);
    each stage's instances form a diversity zone at the stage's level;
    instances with ``volume_gb > 0`` get a dedicated volume attached with
    ``volume_bw_mbps``.
    """
    chain = list(stages if stages is not None else DEFAULT_CHAIN)
    if not chain:
        raise TopologyError("a VNF chain needs at least one stage")
    topo = ApplicationTopology(name)
    stage_members: List[List[str]] = []
    for stage in chain:
        if stage.instances < 1:
            raise TopologyError(
                f"stage {stage.name!r} needs at least one instance"
            )
        members = []
        for i in range(stage.instances):
            vm_name = f"{stage.name}{i + 1}"
            topo.add_vm(vm_name, stage.vcpus, stage.mem_gb)
            members.append(vm_name)
            if stage.volume_gb > 0:
                volume = f"{vm_name}-store"
                topo.add_volume(volume, stage.volume_gb)
                topo.connect(vm_name, volume, volume_bw_mbps)
        if len(members) >= 2:
            topo.add_zone(f"{stage.name}-ha", stage.diversity, members)
        stage_members.append(members)
    for upstream, downstream, stage in zip(
        stage_members, stage_members[1:], chain
    ):
        if stage.egress_bw_mbps <= 0:
            continue
        for src in upstream:
            for dst in downstream:
                topo.connect(src, dst, stage.egress_bw_mbps)
    return topo
