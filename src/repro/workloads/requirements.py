"""VM requirement mixes (Table III and the homogeneous baseline).

The paper evaluates under two requirement regimes:

* **heterogeneous** (Table III): 40% of VMs are network-intensive
  (1 vCPU / 1 GB / 100 Mbps links), 20% balanced (2 / 2 / 50), and 40%
  compute-intensive (4 / 4 / 10);
* **homogeneous**: every VM is 2 vCPUs / 2 GB with 50 Mbps links.

A :class:`RequirementMix` deterministically assigns a :class:`VMSpec` to
the i-th VM of a workload by interleaving the classes according to their
shares, so a topology of any size has (approximately) the paper's
proportions and re-generating the same size yields the same topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class VMSpec:
    """Resource template for one VM class.

    Attributes:
        vcpus: vCPU requirement.
        mem_gb: memory requirement in GB.
        link_bw_mbps: bandwidth requirement of each link incident to VMs
            of this class.
    """

    vcpus: float
    mem_gb: float
    link_bw_mbps: float


@dataclass(frozen=True)
class RequirementMix:
    """A weighted set of VM classes.

    Attributes:
        classes: (share, spec) pairs; shares must sum to 1.
    """

    classes: Tuple[Tuple[float, VMSpec], ...]

    def assign(self, count: int) -> List[VMSpec]:
        """Deterministically expand the mix over ``count`` VMs.

        Uses largest-remainder apportionment so class counts match the
        shares as closely as integer counts allow, then interleaves the
        classes round-robin so consecutive VMs (which usually land in the
        same tier or diversity zone) still mix classes.
        """
        if count <= 0:
            return []
        quotas = [share * count for share, _ in self.classes]
        counts = [int(q) for q in quotas]
        remainders = sorted(
            range(len(quotas)),
            key=lambda i: quotas[i] - counts[i],
            reverse=True,
        )
        for i in range(count - sum(counts)):
            counts[remainders[i % len(remainders)]] += 1
        pools = [
            [spec] * n for n, (_, spec) in zip(counts, self.classes)
        ]
        result: List[VMSpec] = []
        index = 0
        while len(result) < count:
            pool = pools[index % len(pools)]
            if pool:
                result.append(pool.pop())
            index += 1
        return result

    def spec_for(self, index: int, count: int) -> VMSpec:
        """Spec of the index-th VM in a ``count``-VM workload."""
        return self.assign(count)[index]


#: Table III of the paper.
HETEROGENEOUS_MIX = RequirementMix(
    classes=(
        (0.4, VMSpec(vcpus=1, mem_gb=1, link_bw_mbps=100)),
        (0.2, VMSpec(vcpus=2, mem_gb=2, link_bw_mbps=50)),
        (0.4, VMSpec(vcpus=4, mem_gb=4, link_bw_mbps=10)),
    )
)

#: The homogeneous baseline: "all VMs with 2 vCPUs, 2 GB memory, 50 Mbps".
HOMOGENEOUS_SPEC = VMSpec(vcpus=2, mem_gb=2, link_bw_mbps=50)

#: Homogeneous regime expressed as a (single-class) mix.
HOMOGENEOUS_MIX = RequirementMix(classes=((1.0, HOMOGENEOUS_SPEC),))


def mix_for(heterogeneous: bool) -> RequirementMix:
    """The paper's requirement mix for the given regime."""
    return HETEROGENEOUS_MIX if heterogeneous else HOMOGENEOUS_MIX
