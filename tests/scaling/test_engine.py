"""AutoScaler engine tests: deltas, bounds, accounting, metrics."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ReproError
from repro.scaling import (
    ACTION_HOLD,
    ACTION_IN,
    ACTION_OUT,
    AutoScaler,
    EwmaSlopePolicy,
    ScalingConfig,
    ThresholdPolicy,
    consolidation_config,
    make_policy,
)
from repro.scaling.signals import LoadSignal
from tests.scaling.conftest import make_elastic_topology


@pytest.fixture
def recorder():
    rec = obs.enable()
    yield rec
    obs.disable()


def forced_scaler(action: str, **kwargs) -> AutoScaler:
    """A scaler whose thresholds force the requested action."""
    if action == ACTION_OUT:
        kwargs.setdefault("scale_out_at", 0.0)
        kwargs.setdefault("scale_in_at", -1.0)
    elif action == ACTION_IN:
        kwargs.setdefault("scale_out_at", 99.0)
        kwargs.setdefault("scale_in_at", 99.0)
    else:
        kwargs.setdefault("scale_out_at", 99.0)
        kwargs.setdefault("scale_in_at", -1.0)
    return AutoScaler(ScalingConfig(**kwargs))


class TestMakePolicy:
    def test_threshold(self):
        policy = make_policy(ScalingConfig(policy="threshold"))
        assert isinstance(policy, ThresholdPolicy)

    def test_ewma(self):
        policy = make_policy(ScalingConfig(policy="ewma"))
        assert isinstance(policy, EwmaSlopePolicy)

    def test_unknown_policy_raises(self):
        with pytest.raises(ReproError, match="unknown scaling policy"):
            make_policy(ScalingConfig(policy="oracle"))


class TestConsolidationConfig:
    def test_none_when_disabled(self):
        assert (
            consolidation_config(ScalingConfig(consolidate=False), "eg")
            is None
        )

    def test_single_app_pass_when_enabled(self):
        config = consolidation_config(
            ScalingConfig(consolidate=True, max_consolidation_moves=5), "eg"
        )
        assert config is not None
        assert config.enabled
        assert config.algorithm == "eg"
        assert config.max_apps_per_pass == 1
        assert config.max_moves_per_pass == 5


class TestEvaluate:
    def test_delta_is_step_fraction_of_members(self):
        scaler = forced_scaler(ACTION_OUT, step_fraction=0.5)
        decision = scaler.evaluate(
            "app", make_elastic_topology(), 0.0
        )
        assert decision.action == ACTION_OUT
        assert decision.members == 4
        assert decision.delta == 2

    def test_delta_is_at_least_one(self):
        scaler = forced_scaler(ACTION_OUT, step_fraction=0.01)
        decision = scaler.evaluate("app", make_elastic_topology(), 0.0)
        assert decision.delta == 1

    def test_max_members_vetoes_scale_out(self):
        scaler = forced_scaler(ACTION_OUT, max_members=4)
        decision = scaler.evaluate("app", make_elastic_topology(), 0.0)
        assert decision.action == ACTION_HOLD
        assert decision.reason == "at-max"
        assert decision.delta == 0

    def test_max_members_caps_the_delta(self):
        scaler = forced_scaler(ACTION_OUT, step_fraction=0.9, max_members=5)
        decision = scaler.evaluate("app", make_elastic_topology(), 0.0)
        assert decision.action == ACTION_OUT
        assert decision.delta == 1

    def test_min_members_vetoes_scale_in(self):
        scaler = forced_scaler(ACTION_IN, min_members=4)
        decision = scaler.evaluate("app", make_elastic_topology(), 0.0)
        assert decision.action == ACTION_HOLD
        assert decision.reason == "at-min"

    def test_min_members_caps_the_delta(self):
        scaler = forced_scaler(
            ACTION_IN, step_fraction=0.9, min_members=3
        )
        decision = scaler.evaluate("app", make_elastic_topology(), 0.0)
        assert decision.action == ACTION_IN
        assert decision.delta == 1

    def test_initial_size_anchors_demand(self):
        """A registered tier's demand anchor survives later growth."""
        scaler = AutoScaler(ScalingConfig())
        topo = make_elastic_topology()
        scaler.register("app", topo)
        assert scaler.initial["app"] == 4
        grown = topo.copy()
        grown.add_vm("vm-extra1", 2, 4)
        scaler.evaluate("app", grown, 0.0)
        assert scaler.initial["app"] == 4  # unchanged

    def test_register_is_idempotent(self):
        scaler = AutoScaler(ScalingConfig())
        topo = make_elastic_topology()
        scaler.register("app", topo)
        grown = topo.copy()
        grown.add_vm("vm-extra1", 2, 4)
        scaler.register("app", grown)
        assert scaler.initial["app"] == 4

    def test_forget_drops_tracking(self):
        scaler = AutoScaler(ScalingConfig())
        scaler.register("app", make_elastic_topology())
        scaler.forget("app")
        assert "app" not in scaler.initial

    def test_evaluations_are_deterministic(self):
        config = ScalingConfig(seed=11)
        topo = make_elastic_topology()
        runs = []
        for _ in range(2):
            scaler = AutoScaler(config)
            runs.append(
                [
                    (d.action, d.delta, d.utilization)
                    for d in (
                        scaler.evaluate("app", topo, t * 900.0)
                        for t in range(20)
                    )
                ]
            )
        assert runs[0] == runs[1]


class TestAccounting:
    def test_applied_out_updates_stats(self):
        scaler = AutoScaler(ScalingConfig())
        scaler.applied("app", 0.0, ACTION_OUT, 3)
        assert scaler.stats.scale_outs == 1
        assert scaler.stats.vms_added == 3

    def test_applied_in_updates_stats(self):
        scaler = AutoScaler(ScalingConfig())
        scaler.applied("app", 0.0, ACTION_IN, 2)
        assert scaler.stats.scale_ins == 1
        assert scaler.stats.vms_removed == 2

    def test_applied_opens_cooldown(self):
        scaler = AutoScaler(ScalingConfig(cooldown_s=900.0))
        scaler.applied("app", 0.0, ACTION_OUT, 1)
        assert scaler.policy.in_cooldown("app", 100.0)

    def test_failed_out_counts(self):
        scaler = AutoScaler(ScalingConfig())
        scaler.failed("app", ACTION_OUT)
        assert scaler.stats.scale_out_failures == 1

    def test_metrics_emitted(self, recorder):
        scaler = AutoScaler(ScalingConfig())
        scaler.evaluate("app", make_elastic_topology(), 0.0)
        scaler.applied("app", 0.0, ACTION_OUT, 2)
        scaler.failed("app", ACTION_IN)
        registry = recorder.registry
        assert (
            registry.get("ostro_scaling_evaluations_total").value() == 1.0
        )
        assert (
            registry.get("ostro_scaling_actions_total").value(
                direction="out"
            )
            == 1.0
        )
        assert (
            registry.get("ostro_scaling_vms_total").value(direction="added")
            == 2.0
        )
        assert (
            registry.get("ostro_scaling_failures_total").value(
                direction="in"
            )
            == 1.0
        )
        assert registry.get("ostro_scaling_utilization").value(
            app="app"
        ) == pytest.approx(scaler.signal.offered("app", 0.0))
        assert len(recorder.events.of_type("scale_out")) == 1
        assert len(recorder.events.of_type("scale_failed")) == 1


class TestSignalWiring:
    def test_scaler_signal_uses_config_seed(self):
        scaler = AutoScaler(ScalingConfig(seed=42, signal_noise=0.0))
        reference = LoadSignal(seed=42, noise=0.0)
        assert scaler.signal.offered("app", 1234.0) == reference.offered(
            "app", 1234.0
        )
