"""Load-signal tests: determinism, the closed loop, host pressure."""

from __future__ import annotations

import pytest

from repro.scaling.signals import LoadSignal, tier_utilization


class TestLoadSignal:
    def test_same_seed_same_values(self):
        a = LoadSignal(seed=7)
        b = LoadSignal(seed=7)
        for now in (0.0, 900.0, 43200.0, 86399.0):
            assert a.offered("app-1", now) == b.offered("app-1", now)

    def test_different_seeds_diverge(self):
        a = LoadSignal(seed=1)
        b = LoadSignal(seed=2)
        values_a = [a.offered("app-1", t) for t in (0.0, 900.0, 1800.0)]
        values_b = [b.offered("app-1", t) for t in (0.0, 900.0, 1800.0)]
        assert values_a != values_b

    def test_per_tier_phases_differ(self):
        signal = LoadSignal(seed=0)
        assert signal.phase_s("app-1") != signal.phase_s("app-2")

    def test_offered_is_nonnegative(self):
        signal = LoadSignal(seed=3, base=0.1, amplitude=0.9, noise=0.2)
        assert all(
            signal.offered("app-1", t) >= 0.0
            for t in range(0, 86400, 3600)
        )

    def test_diurnal_cycle_spans_the_band(self):
        signal = LoadSignal(seed=5, noise=0.0)
        values = [
            signal.offered("app-1", float(t)) for t in range(0, 86400, 600)
        ]
        assert max(values) > 0.7
        assert min(values) < 0.4


class TestTierUtilization:
    def test_scale_out_lowers_utilization(self):
        """The loop closes: more members dilute the same offered load."""
        signal = LoadSignal(seed=0, noise=0.0)
        before = tier_utilization(signal, "app-1", 4, 4, 1000.0)
        after = tier_utilization(signal, "app-1", 4, 8, 1000.0)
        assert after == pytest.approx(before / 2.0)

    def test_scale_in_raises_utilization(self):
        signal = LoadSignal(seed=0, noise=0.0)
        before = tier_utilization(signal, "app-1", 4, 4, 1000.0)
        after = tier_utilization(signal, "app-1", 4, 2, 1000.0)
        assert after == pytest.approx(before * 2.0)

    def test_pressure_neutral_at_half(self):
        signal = LoadSignal(seed=0, noise=0.0)
        plain = tier_utilization(signal, "app-1", 4, 4, 0.0)
        blended = tier_utilization(
            signal, "app-1", 4, 4, 0.0, pressure=0.5, pressure_weight=0.5
        )
        assert blended == pytest.approx(plain)

    def test_pressure_scales_signal(self):
        signal = LoadSignal(seed=0, noise=0.0)
        plain = tier_utilization(signal, "app-1", 4, 4, 0.0)
        hot = tier_utilization(
            signal, "app-1", 4, 4, 0.0, pressure=1.0, pressure_weight=0.5
        )
        cold = tier_utilization(
            signal, "app-1", 4, 4, 0.0, pressure=0.0, pressure_weight=0.5
        )
        assert hot > plain > cold
