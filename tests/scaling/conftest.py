"""Shared fixtures: a deployed application with a scaled-out tier.

The scale-in and fault tests need a committed application whose tier
has already grown past its original size and whose members spread over
several hosts -- the state an autoscaler actually shrinks from. The
fixture builds it the same way the service driver would: deploy, then
grow twice through the online-update path.
"""

from __future__ import annotations

import pytest

from repro.core.online import add_vms_to_tier, evacuate_host
from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_datacenter


def make_elastic_topology(name: str = "web-fleet") -> ApplicationTopology:
    """A single-tier fleet of 4 chatty VMs behind one volume."""
    topo = ApplicationTopology(name)
    for i in range(4):
        topo.add_vm(f"vm{i}", vcpus=2, mem_gb=4)
    for i in range(1, 4):
        topo.connect("vm0", f"vm{i}", bw_mbps=100)
    topo.add_volume("vol", size_gb=50)
    topo.connect("vm0", "vol", bw_mbps=200)
    return topo


def make_scaled_out_ostro() -> Ostro:
    """Deploy the fleet and grow it twice (4 -> 6 -> 8 members).

    Small hosts (8 cores / 16 GB) force the grown tier across several
    hosts, so a later scale-in actually vacates capacity and gives the
    consolidation pass something to undo.
    """
    cloud = build_datacenter(
        num_racks=2, hosts_per_rack=4, cpu_cores=8, mem_gb=16
    )
    ostro = Ostro(cloud)
    topology = make_elastic_topology()
    ostro.place(topology, algorithm="eg", commit=True)
    for _ in range(2):
        current = ostro.deployed(topology.name).topology
        grown = add_vms_to_tier(current, "vm", 0.0, count=2)
        ostro.update(grown, algorithm="eg")
    assert ostro.verify_state() == []
    return ostro


@pytest.fixture
def scaled_out_ostro() -> Ostro:
    return make_scaled_out_ostro()


def make_fragmented_elastic_ostro() -> Ostro:
    """A scaled-out fleet scattered by crash -> evacuate -> repair.

    Same recipe as ``tests/defrag/conftest.py`` but starting from the
    grown 8-member tier: fillers pin down capacity slivers, the fleet's
    first host is crashed and evacuated into them, then the host is
    repaired and the fillers depart. The survivors straddle several
    hosts of an almost-empty data center, so a scale-in's consolidation
    pass has real migrations to execute -- which is exactly what the
    fault-mid-consolidation tests need to interrupt.
    """
    ostro = make_scaled_out_ostro()
    app_hosts = sorted(
        {
            a.host
            for a in ostro.deployed(
                "web-fleet"
            ).placement.assignments.values()
        }
    )
    fillers = []
    for i in range(6):
        filler = ApplicationTopology(f"filler{i}")
        filler.add_vm("big", vcpus=6, mem_gb=12)
        ostro.place(filler, algorithm="eg", commit=True)
        fillers.append(filler.name)
    victim = app_hosts[0]
    ostro.state.fail_host(victim)
    evacuate_host(ostro, victim, algorithm="eg")
    ostro.state.restore_host(victim)
    for name in fillers:
        ostro.remove(name)
    assert ostro.verify_state() == []
    return ostro


@pytest.fixture
def fragmented_elastic_ostro() -> Ostro:
    return make_fragmented_elastic_ostro()
