"""Fault-mid-scale-in suite, mirroring ``tests/defrag/test_executor.py``.

Two distinct transactional domains are swept:

* the *shrink* itself -- one gated surrogate API call
  (``ostro.scale_in``) releasing every victim's reservations under a
  snapshot; a fault there rolls the whole release back bit-exactly and
  re-raises;
* the optional *consolidation* pass -- one gated call
  (``defrag.migrate``) per migration step; a fault there aborts the
  pass transactionally while the already-committed shrink stays
  durable.

The fragmented fixture's scale-in of 3 members triggers exactly 6
consolidation steps, so the failing call index can be swept across the
entire sequence.
"""

from __future__ import annotations

import pytest

from repro.core.online import remove_vms_from_tier, tier_members
from repro.core.validate import conservation_violations
from repro.defrag import DefragConfig
from repro.errors import PermanentAPIError, RetryError, TransientAPIError
from repro.faults import RetryPolicy
from tests.faults.test_rollback import ScriptedInjector

APP = "web-fleet"
CONSOLIDATE = DefragConfig(algorithm="eg", max_moves_per_pass=16)

#: fragmented fixture, count=3: call 1 is the shrink's release gate,
#: calls 2..7 are the consolidation pass's six migration steps
N_CONSOLIDATION_STEPS = 6
TOTAL_CALLS = 1 + N_CONSOLIDATION_STEPS


class TestShrinkGateFault:
    def test_permanent_fault_rolls_back_bit_exactly(
        self, fragmented_elastic_ostro
    ):
        ostro = fragmented_elastic_ostro
        before = ostro.state.snapshot()
        members_before = tier_members(
            ostro.deployed(APP).topology, "vm"
        )
        assignments_before = dict(
            ostro.deployed(APP).placement.assignments
        )
        ostro.injector = ScriptedInjector([1])
        with pytest.raises(PermanentAPIError):
            remove_vms_from_tier(
                ostro, APP, "vm", count=3, consolidate=CONSOLIDATE
            )
        assert ostro.state.snapshot() == before
        deployed = ostro.deployed(APP)
        assert tier_members(deployed.topology, "vm") == members_before
        assert dict(deployed.placement.assignments) == assignments_before
        assert conservation_violations(ostro) == []
        assert ostro.verify_state() == []
        # the state is fully usable afterwards: the same shrink succeeds
        ostro.injector = None
        result = remove_vms_from_tier(ostro, APP, "vm", count=3)
        assert len(result.removed) == 3
        assert ostro.verify_state() == []

    def test_transient_fault_is_retried_to_success(
        self, fragmented_elastic_ostro
    ):
        ostro = fragmented_elastic_ostro
        injector = ScriptedInjector([1], error=TransientAPIError)
        ostro.injector = injector
        ostro.retry_policy = RetryPolicy(max_attempts=3)
        result = remove_vms_from_tier(ostro, APP, "vm", count=3)
        assert len(result.removed) == 3
        assert injector.calls == 2  # one failure, one successful retry
        assert ostro.verify_state() == []

    def test_exhausted_retries_leave_state_untouched(
        self, fragmented_elastic_ostro
    ):
        ostro = fragmented_elastic_ostro
        before = ostro.state.snapshot()
        ostro.injector = ScriptedInjector(
            [1, 2, 3], error=TransientAPIError
        )
        ostro.retry_policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with pytest.raises(RetryError):
            remove_vms_from_tier(ostro, APP, "vm", count=3)
        assert ostro.state.snapshot() == before
        assert len(tier_members(ostro.deployed(APP).topology, "vm")) == 8
        assert ostro.verify_state() == []


class TestFaultMidConsolidation:
    @pytest.mark.parametrize("fail_at", range(2, TOTAL_CALLS + 1))
    def test_shrink_stays_durable_when_consolidation_aborts(
        self, fragmented_elastic_ostro, fail_at
    ):
        """Failing call ``k`` aborts consolidation step ``k - 2``; the
        state must come back bit-identical to the snapshot taken just
        before that step, with the shrink itself still applied."""
        ostro = fragmented_elastic_ostro
        ostro.injector = ScriptedInjector([fail_at])
        snapshots = {}

        def hook(app, index, step):
            snapshots[index] = ostro.state.snapshot()

        result = remove_vms_from_tier(
            ostro,
            APP,
            "vm",
            count=3,
            consolidate=CONSOLIDATE,
            step_hook=hook,
        )
        # the shrink is durable; only the consolidation pass aborted
        assert result.removed == ["vm-extra4", "vm-extra3", "vm-extra2"]
        assert not result.consolidated
        assert result.consolidation_moves == fail_at - 2
        assert ostro.state.snapshot() == snapshots[fail_at - 2]
        assert len(tier_members(ostro.deployed(APP).topology, "vm")) == 5
        assert conservation_violations(ostro) == []
        assert ostro.verify_state() == []

    def test_transient_consolidation_faults_retry_to_completion(
        self, fragmented_elastic_ostro
    ):
        ostro = fragmented_elastic_ostro
        injector = ScriptedInjector([3, 5], error=TransientAPIError)
        ostro.injector = injector
        ostro.retry_policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        result = remove_vms_from_tier(
            ostro, APP, "vm", count=3, consolidate=CONSOLIDATE
        )
        assert result.consolidated
        assert result.consolidation_moves == N_CONSOLIDATION_STEPS
        assert injector.calls > TOTAL_CALLS  # retries happened
        assert ostro.verify_state() == []


class TestHostCrashMidConsolidation:
    @pytest.mark.parametrize(
        "fail_at", [0, 2, N_CONSOLIDATION_STEPS - 1]
    )
    def test_crash_aborts_pass_but_shrink_survives(
        self, fragmented_elastic_ostro, fail_at
    ):
        """A migration-target host crashing mid-consolidation aborts the
        pass before the in-flight step touches capacity; after repair
        the state equals the snapshot taken just before the crash, and
        the shrink remains applied throughout."""
        ostro = fragmented_elastic_ostro
        crashed = []
        captured = {}

        def hook(app, index, step):
            if index == fail_at and not crashed:
                captured["snapshot"] = ostro.state.snapshot()
                ostro.state.fail_host(step.to_host)
                crashed.append(step.to_host)

        result = remove_vms_from_tier(
            ostro,
            APP,
            "vm",
            count=3,
            consolidate=CONSOLIDATE,
            step_hook=hook,
        )
        assert len(result.removed) == 3
        assert not result.consolidated
        assert result.consolidation_moves == fail_at
        ostro.state.restore_host(crashed[0])
        assert ostro.state.snapshot() == captured["snapshot"]
        assert len(tier_members(ostro.deployed(APP).topology, "vm")) == 5
        assert conservation_violations(ostro) == []
        assert ostro.verify_state() == []
