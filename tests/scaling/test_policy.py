"""Policy tests: hysteresis, cooldown, breach streaks, EWMA projection."""

from __future__ import annotations

import pytest

from repro.scaling.policy import (
    ACTION_HOLD,
    ACTION_IN,
    ACTION_OUT,
    EwmaSlopePolicy,
    ThresholdPolicy,
)


class TestThresholdPolicy:
    def test_above_threshold_scales_out(self):
        policy = ThresholdPolicy(scale_out_at=0.75, scale_in_at=0.30)
        assert policy.decide("a", 0.0, 0.80) == (ACTION_OUT, "above-threshold")

    def test_below_threshold_scales_in(self):
        policy = ThresholdPolicy(scale_out_at=0.75, scale_in_at=0.30)
        assert policy.decide("a", 0.0, 0.20) == (ACTION_IN, "below-threshold")

    def test_band_holds(self):
        policy = ThresholdPolicy(scale_out_at=0.75, scale_in_at=0.30)
        assert policy.decide("a", 0.0, 0.50) == (ACTION_HOLD, "in-band")

    def test_breach_streak_is_hysteresis(self):
        policy = ThresholdPolicy(breaches=3)
        assert policy.decide("a", 0.0, 0.9)[0] == ACTION_HOLD
        assert policy.decide("a", 1.0, 0.9)[0] == ACTION_HOLD
        assert policy.decide("a", 2.0, 0.9)[0] == ACTION_OUT

    def test_streak_resets_on_in_band_sample(self):
        policy = ThresholdPolicy(breaches=2)
        assert policy.decide("a", 0.0, 0.9)[0] == ACTION_HOLD
        assert policy.decide("a", 1.0, 0.5)[0] == ACTION_HOLD
        assert policy.decide("a", 2.0, 0.9)[0] == ACTION_HOLD  # streak restarted
        assert policy.decide("a", 3.0, 0.9)[0] == ACTION_OUT

    def test_cooldown_blocks_consecutive_actions(self):
        policy = ThresholdPolicy(cooldown_s=300.0)
        assert policy.decide("a", 0.0, 0.9)[0] == ACTION_OUT
        policy.record_action("a", 0.0)
        assert policy.decide("a", 100.0, 0.9) == (ACTION_HOLD, "cooldown")
        assert policy.decide("a", 300.0, 0.9)[0] == ACTION_OUT

    def test_cooldown_is_per_tier(self):
        policy = ThresholdPolicy(cooldown_s=300.0)
        policy.record_action("a", 0.0)
        assert policy.decide("a", 100.0, 0.9)[0] == ACTION_HOLD
        assert policy.decide("b", 100.0, 0.9)[0] == ACTION_OUT

    def test_record_action_resets_streaks(self):
        policy = ThresholdPolicy(breaches=2)
        policy.decide("a", 0.0, 0.9)
        policy.record_action("a", 0.0)
        # the streak restarted: one more hot sample is not enough
        assert policy.decide("a", 1.0, 0.9)[0] == ACTION_HOLD

    def test_forget_clears_state(self):
        policy = ThresholdPolicy(breaches=2, cooldown_s=300.0)
        policy.decide("a", 0.0, 0.9)
        policy.record_action("a", 0.0)
        policy.forget("a")
        assert not policy.in_cooldown("a", 1.0)
        assert policy.decide("a", 1.0, 0.9)[0] == ACTION_HOLD  # fresh streak

    def test_deterministic_replay(self):
        samples = [0.8, 0.9, 0.5, 0.2, 0.1, 0.6, 0.95]
        a = ThresholdPolicy(breaches=2, cooldown_s=10.0)
        b = ThresholdPolicy(breaches=2, cooldown_s=10.0)
        run_a = [a.decide("x", float(t), u) for t, u in enumerate(samples)]
        run_b = [b.decide("x", float(t), u) for t, u in enumerate(samples)]
        assert run_a == run_b


class TestEwmaSlopePolicy:
    def test_first_sample_is_level(self):
        policy = EwmaSlopePolicy()
        assert policy.projected("a", 0.0, 0.5) == pytest.approx(0.5)

    def test_rising_trend_scales_out_before_threshold(self):
        """Utilization is still below the threshold, but the projection
        crosses it -- the predictive policy acts early."""
        policy = EwmaSlopePolicy(
            scale_out_at=0.75, alpha=1.0, lead_s=600.0
        )
        policy.decide("a", 0.0, 0.50)
        action, reason = policy.decide("a", 600.0, 0.65)
        assert action == ACTION_OUT
        assert reason == "projected-above-threshold"

    def test_flat_signal_holds(self):
        policy = EwmaSlopePolicy(scale_out_at=0.75, scale_in_at=0.30)
        for t in range(5):
            action, _ = policy.decide("a", t * 600.0, 0.5)
        assert action == ACTION_HOLD

    def test_falling_trend_scales_in(self):
        policy = EwmaSlopePolicy(
            scale_in_at=0.30, alpha=1.0, lead_s=600.0
        )
        policy.decide("a", 0.0, 0.55)
        action, reason = policy.decide("a", 600.0, 0.40)
        assert action == ACTION_IN
        assert reason == "projected-below-threshold"

    def test_cooldown_applies(self):
        policy = EwmaSlopePolicy(cooldown_s=900.0, alpha=1.0)
        policy.record_action("a", 0.0)
        assert policy.decide("a", 100.0, 0.99) == (ACTION_HOLD, "cooldown")

    def test_forget_drops_trend(self):
        policy = EwmaSlopePolicy(alpha=1.0)
        policy.decide("a", 0.0, 0.9)
        policy.forget("a")
        # re-seeded: first sample is taken at face value, no slope
        assert policy.projected("a", 600.0, 0.5) == pytest.approx(0.5)
