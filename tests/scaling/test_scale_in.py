"""Scale-in primitive tests: victim selection, accounting, conservation."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.online import (
    add_vms_to_tier,
    remove_vms_from_tier,
    tier_members,
)
from repro.core.validate import conservation_violations
from repro.defrag import DefragConfig
from repro.errors import PlacementError

APP = "web-fleet"


@pytest.fixture
def recorder():
    rec = obs.enable()
    yield rec
    obs.disable()


class TestVictimSelection:
    def test_unwinds_scale_outs_lifo(self, scaled_out_ostro):
        result = remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=3)
        assert result.removed == ["vm-extra4", "vm-extra3", "vm-extra2"]
        assert result.remaining == 5

    def test_loads_override_preference(self, scaled_out_ostro):
        loads = {name: 1.0 for name in ("vm-extra4", "vm-extra3")}
        loads["vm2"] = 0.0
        result = remove_vms_from_tier(
            scaled_out_ostro, APP, "vm", count=2, loads=loads
        )
        # the loaded extras survive; idle members go first
        assert "vm-extra4" not in result.removed
        assert "vm-extra3" not in result.removed
        assert result.removed == ["vm-extra2", "vm-extra1"]

    def test_originals_removed_reverse_name_order(self, scaled_out_ostro):
        result = remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=6)
        assert result.removed == [
            "vm-extra4",
            "vm-extra3",
            "vm-extra2",
            "vm-extra1",
            "vm3",
            "vm2",
        ]

    def test_min_members_caps_count(self, scaled_out_ostro):
        result = remove_vms_from_tier(
            scaled_out_ostro, APP, "vm", count=100, min_members=3
        )
        assert len(result.removed) == 5
        assert result.remaining == 3

    def test_fraction_uses_ceil(self, scaled_out_ostro):
        result = remove_vms_from_tier(
            scaled_out_ostro, APP, "vm", fraction=0.3
        )
        # ceil(0.3 * 8) = 3
        assert len(result.removed) == 3


class TestZeroDelta:
    def test_zero_count_is_a_no_op(self, scaled_out_ostro, recorder):
        before = scaled_out_ostro.state.snapshot()
        result = remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=0)
        assert result.removed == []
        assert result.remaining == 8
        assert scaled_out_ostro.state.snapshot() == before
        assert recorder.events.of_type("scale_in") == []

    def test_zero_fraction_is_a_no_op(self, scaled_out_ostro):
        before = scaled_out_ostro.state.snapshot()
        result = remove_vms_from_tier(
            scaled_out_ostro, APP, "vm", fraction=0.0
        )
        assert result.removed == []
        assert scaled_out_ostro.state.snapshot() == before

    def test_at_min_members_is_a_no_op(self, scaled_out_ostro):
        remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=7)
        before = scaled_out_ostro.state.snapshot()
        result = remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=1)
        assert result.removed == []
        assert result.remaining == 1
        assert scaled_out_ostro.state.snapshot() == before


class TestStateConsistency:
    def test_topology_and_placement_shrink_together(self, scaled_out_ostro):
        result = remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=3)
        deployed = scaled_out_ostro.deployed(APP)
        for name in result.removed:
            assert name not in deployed.topology.nodes
            assert name not in deployed.placement.assignments
        assert len(tier_members(deployed.topology, "vm")) == 5

    def test_conservation_holds_after_shrink(self, scaled_out_ostro):
        remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=3)
        assert conservation_violations(scaled_out_ostro) == []
        assert scaled_out_ostro.verify_state() == []

    def test_shrink_releases_capacity(self, scaled_out_ostro):
        free_before = sum(scaled_out_ostro.state.free_cpu)
        remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=4)
        assert sum(scaled_out_ostro.state.free_cpu) > free_before

    def test_repeated_shrinks_stay_clean(self, scaled_out_ostro):
        for _ in range(7):
            remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=1)
        deployed = scaled_out_ostro.deployed(APP)
        assert len(tier_members(deployed.topology, "vm")) == 1
        assert scaled_out_ostro.verify_state() == []

    def test_grow_shrink_cycle_roundtrips_capacity(self, scaled_out_ostro):
        """Scaling out then all the way back in frees what it reserved."""
        cpu_before = sum(scaled_out_ostro.state.free_cpu)
        mem_before = sum(scaled_out_ostro.state.free_mem)
        current = scaled_out_ostro.deployed(APP).topology
        grown = add_vms_to_tier(current, "vm", 0.0, count=2)
        scaled_out_ostro.update(grown, algorithm="eg")
        remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=2)
        assert sum(scaled_out_ostro.state.free_cpu) == cpu_before
        assert sum(scaled_out_ostro.state.free_mem) == mem_before
        assert scaled_out_ostro.verify_state() == []

    def test_remove_after_shrink_is_leak_free(self, scaled_out_ostro):
        """A shrunk application's departure releases exactly the rest."""
        remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=3)
        scaled_out_ostro.remove(APP)
        assert scaled_out_ostro.verify_state() == []
        state = scaled_out_ostro.state
        assert state.active_host_indices() == []

    def test_unknown_app_raises(self, scaled_out_ostro):
        with pytest.raises(PlacementError, match="unknown application"):
            remove_vms_from_tier(scaled_out_ostro, "ghost", "vm", count=1)

    def test_unknown_prefix_raises(self, scaled_out_ostro):
        with pytest.raises(PlacementError, match="no VMs with prefix"):
            remove_vms_from_tier(scaled_out_ostro, APP, "nope", count=1)


class TestTelemetry:
    def test_scale_in_event_and_counter(self, scaled_out_ostro, recorder):
        remove_vms_from_tier(scaled_out_ostro, APP, "vm", count=2)
        (event,) = recorder.events.of_type("scale_in")
        assert event.fields["app"] == APP
        assert event.fields["removed"] == 2
        assert event.fields["remaining"] == 6
        assert (
            recorder.registry.get("ostro_scaling_vms_total").value(
                direction="removed"
            )
            == 2.0
        )


class TestConsolidation:
    def test_consolidation_pass_runs_and_stays_clean(self, scaled_out_ostro):
        result = remove_vms_from_tier(
            scaled_out_ostro,
            APP,
            "vm",
            count=4,
            consolidate=DefragConfig(algorithm="eg", max_moves_per_pass=8),
        )
        assert len(result.removed) == 4
        assert scaled_out_ostro.verify_state() == []
        if result.consolidated:
            assert result.consolidation_moves > 0

    def test_disabled_consolidation_is_skipped(self, scaled_out_ostro):
        result = remove_vms_from_tier(
            scaled_out_ostro,
            APP,
            "vm",
            count=4,
            consolidate=DefragConfig(enabled=False, algorithm="eg"),
        )
        assert not result.consolidated
        assert result.consolidation_moves == 0
