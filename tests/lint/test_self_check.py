"""Self-check: the shipped package is ostrolint-clean, unsuppressed.

The acceptance bar for the lint layer is not "the tool runs" but "the
scheduler core actually satisfies the invariants it encodes": zero
findings over ``src/repro``, and zero inline ``# ostrolint:`` escapes in
``repro.core`` -- the only sanctioned clock sites live in the explicit
timing allowlist, not in suppression comments.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def test_src_repro_is_lint_clean():
    diagnostics, files_checked = lint_paths([str(SRC_REPRO)])
    assert files_checked > 50  # the whole package, not a stray subdir
    assert diagnostics == [], "\n".join(d.render() for d in diagnostics)


def test_core_carries_no_inline_suppressions():
    offenders = [
        path
        for path in sorted((SRC_REPRO / "core").rglob("*.py"))
        if "# ostrolint:" in path.read_text(encoding="utf-8")
    ]
    assert offenders == [], (
        "repro.core must stay suppression-free; the timing allowlist in "
        "repro.lint.rules.determinism is the only sanctioned escape"
    )
