"""Project machinery: fact extraction, call resolution, taint fixpoints,
and the incremental cache."""

from __future__ import annotations

import ast
import json
import textwrap

from repro.lint import LintCache, lint_paths, render_json
from repro.lint.cache import CACHE_SCHEMA
from repro.lint.project import ProjectContext
from repro.lint.symbols import extract_module_facts


def facts_of(source: str, module: str, path: str = "fx.py"):
    tree = ast.parse(textwrap.dedent(source))
    return extract_module_facts(tree, path, module)


class TestExtraction:
    def test_qualnames_and_classes(self):
        facts = facts_of(
            """
            class Planner:
                def place(self, vm):
                    return self._fit(vm)

                def _fit(self, vm):
                    return vm


            def entry(planner, vm):
                return planner.place(vm)
            """,
            module="repro.sim.plan",
        )
        assert set(facts.functions) == {
            "Planner.place",
            "Planner._fit",
            "entry",
        }
        assert facts.functions["Planner.place"].funcref == (
            "repro.sim.plan:Planner.place"
        )
        assert facts.classes["Planner"].methods == ("place", "_fit")

    def test_import_map(self):
        facts = facts_of(
            """
            import time
            import repro.obs as obs
            from repro.sim.helper import stamp
            """,
            module="repro.sim.use",
        )
        assert facts.imports["time"] == "time"
        assert facts.imports["obs"] == "repro.obs"
        assert facts.imports["stamp"] == "repro.sim.helper.stamp"

    def test_ret_elements_for_uniform_tuple_returns(self):
        facts = facts_of(
            """
            import time


            def timed(fn):
                start = time.perf_counter()
                result = fn()
                return result, time.perf_counter() - start
            """,
            module="repro.sim.t",
        )
        elements = facts.functions["timed"].ret_elements
        assert elements is not None and len(elements) == 2
        assert not elements[0].sources  # the payload element is clean
        assert "time.perf_counter" in elements[1].sources

    def test_ret_elements_absent_for_mixed_returns(self):
        facts = facts_of(
            """
            def maybe(fn, flag):
                if flag:
                    return fn(), 1
                return None
            """,
            module="repro.sim.t",
        )
        assert facts.functions["maybe"].ret_elements is None


class TestResolution:
    def _project(self):
        helper = facts_of(
            """
            def stamp():
                return 1


            def wrap():
                return stamp()
            """,
            module="repro.sim.helper",
            path="helper.py",
        )
        user = facts_of(
            """
            from repro.sim.helper import stamp


            def use():
                return stamp()
            """,
            module="repro.sim.use",
            path="use.py",
        )
        return ProjectContext([helper, user])

    def test_same_module_call_is_pinned(self):
        project = self._project()
        wrap = project.functions["repro.sim.helper:wrap"]
        (site,) = wrap.calls
        assert project.resolve(site) == ["repro.sim.helper:stamp"]

    def test_imported_call_resolves_across_modules(self):
        project = self._project()
        use = project.functions["repro.sim.use:use"]
        (site,) = use.calls
        assert project.resolve(site) == ["repro.sim.helper:stamp"]

    def test_overly_common_bare_name_stays_unresolved(self):
        modules = [
            facts_of(
                f"""
                class Thing{i}:
                    def run(self):
                        return {i}
                """,
                module=f"repro.sim.m{i}",
                path=f"m{i}.py",
            )
            for i in range(5)
        ]
        caller = facts_of(
            """
            def go(thing):
                return thing.run()
            """,
            module="repro.sim.go",
            path="go.py",
        )
        project = ProjectContext(modules + [caller])
        go = project.functions["repro.sim.go:go"]
        (site,) = go.calls
        # five candidates named 'run' exceed the ambiguity cap
        assert project.resolve(site) == []


class TestTaintFixpoint:
    def test_taint_propagates_through_call_chain(self):
        helper = facts_of(
            """
            import time


            def now():
                return time.perf_counter()


            def wrapped():
                return now()
            """,
            module="repro.sim.h",
            path="h.py",
        )
        project = ProjectContext([helper])
        tainted = project.tainted_returns()
        assert "repro.sim.h:now" in tainted
        assert "repro.sim.h:wrapped" in tainted

    def test_element_precision(self):
        helper = facts_of(
            """
            import time


            def timed(fn):
                return fn(), time.perf_counter()
            """,
            module="repro.sim.h",
            path="h.py",
        )
        project = ProjectContext([helper])
        project.tainted_returns()
        elements = project.tainted_elements()
        assert ("repro.sim.h:timed", 1) in elements
        assert ("repro.sim.h:timed", 0) not in elements


def write_tree(root, body="VALUE = 1\n"):
    pkg = root / "repro" / "core"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / "fx.py"
    target.write_text(body, encoding="utf-8")
    return target


class TestIncrementalCache:
    def test_warm_run_is_byte_identical(self, tmp_path):
        target = write_tree(tmp_path, "def f():\n    print('x')\n")
        cache_path = tmp_path / "cache.json"

        cold_cache = LintCache(cache_path)
        cold, checked = lint_paths([str(target)], cache=cold_cache)
        cold_cache.save()
        assert cache_path.exists()

        warm_cache = LintCache(cache_path)
        warm, warm_checked = lint_paths([str(target)], cache=warm_cache)
        assert render_json(cold, checked) == render_json(
            warm, warm_checked
        )
        assert [d.code for d in warm] == ["OST006"]

    def test_content_change_invalidates_entry(self, tmp_path):
        target = write_tree(tmp_path)
        cache_path = tmp_path / "cache.json"

        cache = LintCache(cache_path)
        clean, _ = lint_paths([str(target)], cache=cache)
        cache.save()
        assert clean == []

        target.write_text("def f():\n    print('x')\n", encoding="utf-8")
        warm_cache = LintCache(cache_path)
        warm, _ = lint_paths([str(target)], cache=warm_cache)
        assert [d.code for d in warm] == ["OST006"]

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        target = write_tree(tmp_path, "def f():\n    print('x')\n")
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json", encoding="utf-8")

        cache = LintCache(cache_path)
        diags, _ = lint_paths([str(target)], cache=cache)
        assert [d.code for d in diags] == ["OST006"]
        cache.save()
        # the rewritten cache is valid again
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        assert payload["schema"] == CACHE_SCHEMA

    def test_schema_mismatch_drops_entries(self, tmp_path):
        target = write_tree(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache = LintCache(cache_path)
        lint_paths([str(target)], cache=cache)
        cache.save()

        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        payload["schema"] = CACHE_SCHEMA - 1
        cache_path.write_text(json.dumps(payload), encoding="utf-8")
        reloaded = LintCache(cache_path)
        assert reloaded.entries == {}

    def test_prune_drops_dead_entries(self, tmp_path):
        target = write_tree(tmp_path)
        cache = LintCache(tmp_path / "cache.json")
        lint_paths([str(target)], cache=cache)
        assert str(target) in cache.entries
        cache.prune([])
        assert cache.entries == {}
