"""CFG builder semantics: exception edges, finally, loops, reachability."""

from __future__ import annotations

import ast

from repro.lint.cfg import CFG


def build(source: str) -> CFG:
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return CFG.for_function(func)


def node_by_line(cfg: CFG, line: int):
    for node in cfg.statement_nodes():
        if node.stmt.lineno == line:
            return node
    raise AssertionError(f"no CFG node at line {line}")


class TestExceptionEdges:
    def test_narrow_handler_also_propagates(self):
        # a may-raise call inside try with a narrow handler reaches BOTH
        # the handler and the exceptional exit
        cfg = build(
            "def f(state):\n"
            "    try:\n"
            "        state.apply()\n"
            "    except ValueError:\n"
            "        handle()\n"
        )
        call = node_by_line(cfg, 3)
        reachable = cfg.reachable_from([call.index], blocked=frozenset())
        assert cfg.raise_exit.index in reachable
        handler_call = node_by_line(cfg, 5)
        assert handler_call.index in reachable

    def test_broad_handler_catches_everything(self):
        cfg = build(
            "def f(state):\n"
            "    try:\n"
            "        state.apply()\n"
            "    except BaseException:\n"
            "        handle()\n"
        )
        call = node_by_line(cfg, 3)
        reachable = cfg.reachable_from([call.index], blocked=frozenset())
        assert cfg.raise_exit.index not in reachable

    def test_statement_outside_try_does_not_escape(self):
        cfg = build(
            "def f(state):\n"
            "    state.apply()\n"
            "    return 1\n"
        )
        call = node_by_line(cfg, 2)
        reachable = cfg.reachable_from([call.index], blocked=frozenset())
        assert cfg.raise_exit.index not in reachable

    def test_explicit_raise_escapes(self):
        cfg = build(
            "def f(x):\n"
            "    if x:\n"
            "        raise ValueError(x)\n"
            "    return x\n"
        )
        entry = node_by_line(cfg, 2)
        reachable = cfg.reachable_from([entry.index], blocked=frozenset())
        assert cfg.raise_exit.index in reachable

    def test_reraise_after_broad_handler_escapes(self):
        cfg = build(
            "def f(state):\n"
            "    try:\n"
            "        state.apply()\n"
            "    except BaseException:\n"
            "        undo()\n"
            "        raise\n"
        )
        call = node_by_line(cfg, 3)
        reachable = cfg.reachable_from([call.index], blocked=frozenset())
        # escapes only THROUGH the handler body
        assert cfg.raise_exit.index in reachable
        undo = node_by_line(cfg, 5)
        blocked = cfg.reachable_from(
            [call.index], blocked=frozenset({undo.index})
        )
        assert cfg.raise_exit.index not in blocked


class TestFinally:
    def test_finally_runs_on_exceptional_path(self):
        cfg = build(
            "def f(state):\n"
            "    try:\n"
            "        state.apply()\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        call = node_by_line(cfg, 3)
        cleanup_nodes = [
            n for n in cfg.statement_nodes() if n.stmt.lineno == 5
        ]
        # instantiated twice: normal and propagating continuation
        assert len(cleanup_nodes) == 2
        reachable = cfg.reachable_from([call.index], blocked=frozenset())
        assert cfg.raise_exit.index in reachable
        # blocking every finally instance cuts the exceptional exit
        blocked = cfg.reachable_from(
            [call.index],
            blocked=frozenset(n.index for n in cleanup_nodes),
        )
        assert cfg.raise_exit.index not in blocked


class TestReachability:
    def test_blocked_nodes_are_never_entered(self):
        cfg = build(
            "def f(x):\n"
            "    a()\n"
            "    b()\n"
            "    c()\n"
        )
        a = node_by_line(cfg, 2)
        b = node_by_line(cfg, 3)
        c = node_by_line(cfg, 4)
        reachable = cfg.reachable_from(
            [a.index], blocked=frozenset({b.index})
        )
        assert c.index not in reachable

    def test_loop_back_edge(self):
        cfg = build(
            "def f(items):\n"
            "    for item in items:\n"
            "        use(item)\n"
            "    return 1\n"
        )
        body = node_by_line(cfg, 3)
        head = node_by_line(cfg, 2)
        reachable = cfg.reachable_from([body.index], blocked=frozenset())
        assert head.index in reachable  # back edge


class TestReachingDefinitions:
    def test_loop_merges_both_definitions(self):
        cfg = build(
            "def f(items):\n"
            "    x = 0\n"
            "    for item in items:\n"
            "        use(x)\n"
            "        x = item\n"
            "    return x\n"
        )
        envs = cfg.reaching_definitions()
        use = node_by_line(cfg, 4)
        first = node_by_line(cfg, 2)
        second = node_by_line(cfg, 5)
        defs = envs[use.index]["x"]
        assert first.index in defs
        assert second.index in defs

    def test_straight_line_kill(self):
        cfg = build(
            "def f():\n"
            "    x = 1\n"
            "    x = 2\n"
            "    use(x)\n"
        )
        envs = cfg.reaching_definitions()
        use = node_by_line(cfg, 4)
        second = node_by_line(cfg, 3)
        assert envs[use.index]["x"] == {second.index}
