"""Engine tests: discovery, module inference, suppressions, rendering."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    JSON_SCHEMA_VERSION,
    all_rules,
    known_codes,
    lint_paths,
    lint_source,
    module_from_path,
    render_json,
    render_report,
    render_text,
    rule_for_code,
)
from repro.lint.engine import iter_source_files, parse_suppressions
from repro.lint.registry import Rule, register


class TestModuleFromPath:
    def test_package_file(self):
        path = Path("src/repro/core/greedy.py")
        assert module_from_path(path) == "repro.core.greedy"

    def test_init_maps_to_package(self):
        assert module_from_path(Path("src/repro/__init__.py")) == "repro"
        path = Path("src/repro/lint/rules/__init__.py")
        assert module_from_path(path) == "repro.lint.rules"

    def test_outside_repro_tree_is_none(self):
        assert module_from_path(Path("tests/lint/test_engine.py")) is None
        assert module_from_path(Path("benchmarks/conftest.py")) is None

    def test_last_repro_component_anchors(self):
        # a checkout under a directory itself named "repro" must anchor
        # on the *package* root, not the outer directory
        path = Path("repro/src/repro/core/astar.py")
        assert module_from_path(path) == "repro.core.astar"


class TestSuppressionParsing:
    def test_single_and_multi_code(self):
        sup = parse_suppressions(
            "x = 1  # ostrolint: disable=OST001\n"
            "y = 2  # ostrolint: disable=OST002,OST006\n"
        )
        assert sup[1] == frozenset({"OST001"})
        assert sup[2] == frozenset({"OST002", "OST006"})

    def test_bare_disable_means_all(self):
        sup = parse_suppressions("x = 1  # ostrolint: disable\n")
        assert sup[1] == frozenset({"*"})

    def test_string_literal_is_not_a_directive(self):
        sup = parse_suppressions('s = "# ostrolint: disable=OST001"\n')
        assert sup == {}

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("x = 1  # a plain comment\n") == {}


class TestDiscovery:
    def test_excluded_trees_are_skipped(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "m.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "sub").mkdir()
        (tmp_path / "pkg" / "sub" / "n.py").write_text("y = 2\n")
        for tree in ("__pycache__", "build", ".venv", "thing.egg-info"):
            (tmp_path / "pkg" / tree).mkdir()
            (tmp_path / "pkg" / tree / "z.py").write_text("z = 3\n")
        found = [
            p.relative_to(tmp_path).as_posix()
            for p in iter_source_files([str(tmp_path)])
        ]
        assert found == ["pkg/m.py", "pkg/sub/n.py"]

    def test_explicit_file_always_linted(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        target = cache / "m.py"
        target.write_text("x = 1\n")
        assert list(iter_source_files([str(target)])) == [target]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_source_files(["does/not/exist"]))

    def test_lint_paths_counts_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        diagnostics, files_checked = lint_paths([str(tmp_path)])
        assert diagnostics == []
        assert files_checked == 2


class TestSyntaxError:
    def test_unparsable_file_reports_ost000(self):
        (diag,) = lint_source("def broken(:\n", path="bad.py")
        assert diag.code == "OST000"
        assert diag.rule == "syntax-error"
        assert diag.line == 1
        assert "cannot parse" in diag.message


class TestJsonSchema:
    def _sample(self):
        source = (
            "import random\n"
            "def f() -> float:\n"
            "    print('x')\n"
            "    return random.random()\n"
        )
        return lint_source(source, path="s.py", module="repro.core.fx")

    def test_payload_shape_is_stable(self):
        diags = self._sample()
        payload = json.loads(render_json(diags, files_checked=1))
        assert set(payload) == {
            "version",
            "files_checked",
            "counts",
            "diagnostics",
        }
        assert payload["version"] == JSON_SCHEMA_VERSION == 1
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"OST001": 1, "OST006": 1}
        for entry in payload["diagnostics"]:
            assert set(entry) == {
                "path",
                "line",
                "col",
                "code",
                "rule",
                "message",
            }

    def test_output_is_byte_stable(self):
        diags = self._sample()
        first = render_json(diags, 1)
        second = render_json(list(reversed(diags)), 1)
        assert first == second

    def test_diagnostics_sorted_by_position(self):
        diags = self._sample()
        payload = json.loads(render_json(diags, 1))
        positions = [
            (d["path"], d["line"], d["col"], d["code"])
            for d in payload["diagnostics"]
        ]
        assert positions == sorted(positions)


class TestTextRendering:
    def test_clean_summary(self):
        assert render_text([], 5) == "checked 5 files: no problems found"
        assert render_text([], 1) == "checked 1 file: no problems found"

    def test_findings_include_location_code_and_rule(self):
        (diag,) = lint_source(
            "print('x')\n", path="lib.py", module="repro.core.fx"
        )
        report = render_text([diag], 1)
        assert "lib.py:1:1: OST006" in report
        assert "[no-print]" in report
        assert report.endswith("found 1 problem(s) in 1 file")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            render_report([], 0, fmt="yaml")


class TestRegistry:
    def test_all_builtin_codes_registered(self):
        codes = known_codes()
        assert codes == sorted(codes)
        for expected in (
            "OST001",
            "OST002",
            "OST003",
            "OST004",
            "OST005",
            "OST006",
            "OST007",
        ):
            assert expected in codes

    def test_rule_lookup_roundtrip(self):
        for rule in all_rules():
            assert rule_for_code(rule.code) is rule
            assert rule.summary

    def test_duplicate_code_rejected(self):
        known_codes()  # force builtin registration before the collision

        class Duplicate(Rule):
            code = "OST006"
            name = "dup"

        with pytest.raises(ValueError, match="duplicate rule code"):
            register(Duplicate)

    def test_codeless_rule_rejected(self):
        class Nameless(Rule):
            pass

        with pytest.raises(ValueError, match="must define"):
            register(Nameless)
