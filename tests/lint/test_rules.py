"""Per-rule fixture tests for ostrolint.

Each fixture under ``fixtures/`` declares its synthetic module path in a
header comment and marks every line a rule must fire on with
``# expect: OST0xx``. The harness lints the fixture through
:func:`repro.lint.lint_source` and asserts the *exact* set of
``(line, code)`` findings -- so a fixture documents both the true
positives and, implicitly, every construct the rule must stay quiet on.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

_MODULE_RE = re.compile(r"#\s*ostrolint-fixture module:\s*(\S+)")
_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9]+)")


def load_fixture(name: str) -> Tuple[str, Optional[str], List[Tuple[int, str]]]:
    """Read a fixture: (source, declared module, expected (line, code))."""
    source = (FIXTURES / name).read_text(encoding="utf-8")
    module = None
    expected = []
    for lineno, line in enumerate(source.splitlines(), 1):
        match = _MODULE_RE.search(line)
        if match is not None:
            module = match.group(1)
        for code in _EXPECT_RE.findall(line):
            expected.append((lineno, code))
    return source, module, sorted(expected)


def check_fixture(name: str) -> None:
    source, module, expected = load_fixture(name)
    diagnostics = lint_source(source, path=name, module=module)
    found = sorted((d.line, d.code) for d in diagnostics)
    assert found == expected, (
        f"{name}: expected findings {expected}, got "
        f"{[(d.line, d.code, d.message) for d in diagnostics]}"
    )


class TestOST001UnseededRandom:
    def test_fires_on_global_rng_and_import(self):
        check_fixture("ost001_unseeded_random.py")

    def test_out_of_scope_module_is_clean(self):
        source, _, _ = load_fixture("ost001_unseeded_random.py")
        assert lint_source(source, module="repro.sim.runner") == []

    def test_message_names_the_offender(self):
        source, module, _ = load_fixture("ost001_unseeded_random.py")
        diags = lint_source(source, module=module)
        assert any("random.random()" in d.message for d in diags)
        assert all(d.rule == "unseeded-random" for d in diags)


class TestOST002WallClock:
    def test_fires_outside_allowlist(self):
        check_fixture("ost002_wall_clock.py")

    def test_allowlisted_qualname_and_nested_scope(self):
        # BAStar._run (and scopes nested in it) may read the clock in
        # repro.core.astar; BAStar._helper may not.
        check_fixture("ost002_allowlist.py")

    def test_allowlist_is_per_module(self):
        # the same BAStar._run source outside repro.core.astar fires
        source, _, _ = load_fixture("ost002_allowlist.py")
        diags = lint_source(source, module="repro.core.fixture_other")
        assert len(diags) == 3
        assert {d.code for d in diags} == {"OST002"}


class TestOST003CacheInvalidation:
    def test_mutator_without_hook_call_fires(self):
        check_fixture("ost003_cache_invalidation.py")

    def test_diagnostic_names_class_method_and_attr(self):
        source, module, _ = load_fixture("ost003_cache_invalidation.py")
        (diag,) = lint_source(source, module=module)
        assert "Topology.add_name" in diag.message
        assert "self._names" in diag.message
        assert "_invalidate_caches" in diag.message


class TestOST004ParameterMutation:
    def test_mutations_of_tracked_params_fire(self):
        check_fixture("ost004_parameter_mutation.py")

    def test_only_scoring_pipeline_modules_are_scoped(self):
        source, _, _ = load_fixture("ost004_parameter_mutation.py")
        assert lint_source(source, module="repro.core.scheduler") == []


class TestOST005ResourceWrite:
    def test_writes_outside_owners_fire(self):
        check_fixture("ost005_resource_write.py")

    def test_owner_modules_may_write(self):
        source, _, _ = load_fixture("ost005_resource_write.py")
        for owner in (
            "repro.datacenter.state",
            "repro.datacenter.resources",
            "repro.core.placement",
        ):
            assert lint_source(source, module=owner) == []


class TestOST006NoPrint:
    def test_print_in_library_code_fires(self):
        check_fixture("ost006_print.py")

    def test_cli_and_reporting_are_exempt(self):
        source, _, _ = load_fixture("ost006_print.py")
        assert lint_source(source, module="repro.cli") == []
        assert lint_source(source, module="repro.sim.reporting") == []

    def test_files_outside_repro_are_out_of_scope(self):
        source, _, _ = load_fixture("ost006_print.py")
        assert lint_source(source, module=None, path="examples/x.py") == []


class TestOST007UnitSuffix:
    def test_quantity_names_without_suffix_fire(self):
        check_fixture("ost007_units.py")

    def test_messages_point_at_units_conventions(self):
        source, module, _ = load_fixture("ost007_units.py")
        diags = lint_source(source, module=module)
        assert all("unit" in d.message for d in diags)
        assert {d.rule for d in diags} == {"unit-suffix"}


class TestOST008SilentExcept:
    def test_swallowing_handlers_fire(self):
        check_fixture("ost008_silent_except.py")

    def test_out_of_scope_module_is_clean(self):
        source, _, _ = load_fixture("ost008_silent_except.py")
        assert lint_source(source, module=None, path="examples/x.py") == []

    def test_rule_identity(self):
        source, module, _ = load_fixture("ost008_silent_except.py")
        diags = lint_source(source, module=module)
        assert {d.rule for d in diags} == {"no-silent-except"}


class TestSuppressions:
    def test_inline_disable_silences_exact_codes_only(self):
        check_fixture("suppressed.py")

    def test_directive_in_string_literal_does_not_suppress(self):
        source = (
            "import random\n"
            's = "# ostrolint: disable=OST001"\n'
            "x = random.random()\n"
        )
        diags = lint_source(source, module="repro.core.fixture_str")
        assert [(d.line, d.code) for d in diags] == [(3, "OST001")]
