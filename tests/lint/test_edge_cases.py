"""Engine edge cases: decorated/async defs, walrus, match, suppressions."""

from __future__ import annotations

import sys
import textwrap

import pytest

from repro.lint import lint_source


def lint_core(body: str):
    return lint_source(
        textwrap.dedent(body),
        path="src/repro/core/fx.py",
        module="repro.core.fx",
    )


class TestDecoratedAndAsyncDefs:
    def test_violation_inside_decorated_def_is_found(self):
        diags = lint_core(
            """
            import random


            @staticmethod
            def pick():
                return random.random()
            """
        )
        assert [d.code for d in diags] == ["OST001"]

    def test_suppression_inside_decorated_def(self):
        diags = lint_core(
            """
            import random


            @staticmethod
            def pick():
                return random.random()  # ostrolint: disable=OST001
            """
        )
        assert diags == []

    def test_violation_inside_async_def_is_found(self):
        diags = lint_core(
            """
            import random


            async def pick():
                return random.random()
            """
        )
        assert [d.code for d in diags] == ["OST001"]

    def test_suppression_inside_async_def(self):
        diags = lint_core(
            """
            import random


            async def pick():
                return random.random()  # ostrolint: disable=OST001
            """
        )
        assert diags == []


class TestWalrus:
    def test_violation_in_walrus_value_is_found(self):
        diags = lint_core(
            """
            import random


            def pick(threshold):
                if (x := random.random()) > threshold:
                    return x
                return threshold
            """
        )
        assert [d.code for d in diags] == ["OST001"]

    def test_walrus_suppression_applies_to_its_line(self):
        diags = lint_core(
            """
            import random


            def pick(threshold):
                if (x := random.random()) > threshold:  # ostrolint: disable=OST001
                    return x
                return threshold
            """
        )
        assert diags == []


@pytest.mark.skipif(
    sys.version_info < (3, 10), reason="match statements need 3.10+"
)
class TestMatch:
    def test_violation_in_match_arm_is_found(self):
        diags = lint_core(
            """
            import random


            def pick(kind):
                match kind:
                    case "jitter":
                        return random.random()
                    case _:
                        return 0.0
            """
        )
        assert [d.code for d in diags] == ["OST001"]

    def test_suppression_in_match_arm(self):
        diags = lint_core(
            """
            import random


            def pick(kind):
                match kind:
                    case "jitter":
                        return random.random()  # ostrolint: disable=OST001
                    case _:
                        return 0.0
            """
        )
        assert diags == []

    def test_match_snapshot_paths_are_modeled(self):
        # OST009's CFG fans match statements out per case: a mutation
        # in one arm with no restore on the escape path still fires
        diags = lint_source(
            textwrap.dedent(
                """
                def admit(state, group, kind):
                    snap = state.snapshot()
                    try:
                        match kind:
                            case "fast":
                                state.apply(group)
                            case _:
                                pass
                    except ValueError:
                        return None
                """
            ),
            path="src/repro/service/fx.py",
            module="repro.service.fx",
        )
        assert [d.code for d in diags] == ["OST009"]


class TestSuppressionParsing:
    def test_bare_disable_silences_all_codes(self):
        diags = lint_core(
            """
            import random


            def pick():
                return random.random()  # ostrolint: disable
            """
        )
        assert diags == []

    def test_wrong_code_does_not_suppress(self):
        diags = lint_core(
            """
            import random


            def pick():
                return random.random()  # ostrolint: disable=OST006
            """
        )
        assert [d.code for d in diags] == ["OST001"]
