"""Flow-aware rules OST009-OST012: true positives and FP guards.

OST009 is a per-file CFG rule and runs through ``lint_source``;
OST010/OST011/OST012 need the cross-file view and run through
``lint_project_sources``.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint import lint_project_sources, lint_source
from repro.lint.rules.transactions import _mutates_state, _restores


def codes(diags, code):
    return [d for d in diags if d.code == code]


def lint_service_source(body: str):
    return lint_source(
        textwrap.dedent(body),
        path="src/repro/service/fx.py",
        module="repro.service.fx",
    )


class TestTransactionDiscipline:
    """OST009: snapshot must reach a restore on exception paths."""

    def test_unrestored_mutation_fires(self):
        diags = lint_service_source(
            """
            def admit(state, group):
                snap = state.snapshot()
                try:
                    state.apply(group)
                except ValueError:
                    return None
                return snap
            """
        )
        found = codes(diags, "OST009")
        assert len(found) == 1
        assert "'snap'" in found[0].message
        assert "'apply()'" in found[0].message

    def test_restore_in_finally_is_clean(self):
        diags = lint_service_source(
            """
            def admit(state, group):
                snap = state.snapshot()
                try:
                    state.apply(group)
                finally:
                    state.restore(snap)
            """
        )
        assert codes(diags, "OST009") == []

    def test_restore_in_broad_except_is_clean(self):
        diags = lint_service_source(
            """
            def admit(state, group):
                snap = state.snapshot()
                try:
                    state.apply(group)
                except BaseException:
                    state.restore(snap)
                    raise
            """
        )
        assert codes(diags, "OST009") == []

    def test_narrow_except_alone_still_fires(self):
        # a narrow handler restores, but an unexpected exception type
        # bypasses it -- exactly the heat-engine bug class
        diags = lint_service_source(
            """
            def admit(state, group):
                snap = state.snapshot()
                try:
                    state.apply(group)
                except ValueError:
                    state.restore(snap)
                    raise
            """
        )
        assert len(codes(diags, "OST009")) == 1

    def test_read_only_snapshot_is_clean(self):
        diags = lint_service_source(
            """
            def probe(state, group):
                snap = state.snapshot()
                try:
                    return estimate(snap, group)
                except ValueError:
                    return None
            """
        )
        assert codes(diags, "OST009") == []

    def test_rollback_to_counts_as_restore(self):
        diags = lint_service_source(
            """
            def admit(coordinator, group):
                snap = coordinator.snapshot()
                try:
                    coordinator.admit(group)
                except BaseException:
                    coordinator.rollback_to(snap, group)
                    raise
            """
        )
        assert codes(diags, "OST009") == []

    def test_mutation_after_try_is_clean(self):
        # commit after the guarded region: per the CFG model an
        # unguarded trailing call is not an exception path
        diags = lint_service_source(
            """
            def admit(state, group):
                snap = state.snapshot()
                try:
                    validate(group)
                except ValueError:
                    state.restore(snap)
                    raise
                state.commit(group)
            """
        )
        assert codes(diags, "OST009") == []

    def test_outside_transaction_packages_is_ignored(self):
        diags = lint_source(
            textwrap.dedent(
                """
                def admit(state, group):
                    snap = state.snapshot()
                    try:
                        state.apply(group)
                    except ValueError:
                        return None
                """
            ),
            path="src/repro/core/fx.py",
            module="repro.core.fx",
        )
        assert codes(diags, "OST009") == []


class TestCompoundHeadScanning:
    """Regression: compound CFG heads must not absorb body calls."""

    def _stmt(self, source: str) -> ast.stmt:
        return ast.parse(textwrap.dedent(source)).body[0]

    def test_loop_head_does_not_own_body_mutation(self):
        stmt = self._stmt(
            """
            for group in groups:
                state.commit(group)
            """
        )
        assert _mutates_state(stmt) is None

    def test_loop_head_does_not_own_body_restore(self):
        stmt = self._stmt(
            """
            for group in groups:
                state.restore(snap)
            """
        )
        assert not _restores(stmt, "snap")

    def test_loop_head_owns_its_iter_expression(self):
        stmt = self._stmt(
            """
            for group in state.apply(groups):
                pass
            """
        )
        assert _mutates_state(stmt) == "apply"

    def test_simple_statement_is_fully_scanned(self):
        stmt = self._stmt("result = state.commit(group)\n")
        assert _mutates_state(stmt) == "commit"
        assert _restores(self._stmt("state.restore(snap)\n"), "snap")


HELPER_CLOCK = textwrap.dedent(
    """
    import time


    def stamp():
        return time.perf_counter()
    """
)


def lint_sim_project(files):
    """Project-lint fixture files under repro.sim.* module names."""
    paths = {}
    sources = []
    for name, source in files:
        path = f"src/repro/sim/{name}.py"
        paths[path] = f"repro.sim.{name}"
        sources.append((path, textwrap.dedent(source)))
    return lint_project_sources(sources, modules=paths)


class TestDeterminismTaint:
    """OST010: clock/RNG values must not reach fingerprinted code."""

    def test_cross_module_clock_reaching_fingerprint_fires(self):
        diags = lint_sim_project(
            [
                ("helper", HELPER_CLOCK),
                (
                    "emit",
                    """
                    from repro.sim.helper import stamp


                    def fingerprint(rows):
                        return rows_fingerprint(rows, stamp())
                    """,
                ),
            ]
        )
        found = codes(diags, "OST010")
        assert len(found) == 1
        assert found[0].path == "src/repro/sim/emit.py"
        assert "time.perf_counter" in found[0].message
        assert "rows_fingerprint" in found[0].message

    def test_tainted_event_payload_fires(self):
        diags = lint_sim_project(
            [
                ("helper", HELPER_CLOCK),
                (
                    "emit",
                    """
                    from repro.sim.helper import stamp


                    def emit(rec):
                        rec.event("placed", score=stamp())
                    """,
                ),
            ]
        )
        found = codes(diags, "OST010")
        assert len(found) == 1
        assert "event:score" in found[0].message

    def test_volatile_event_key_is_exempt(self):
        diags = lint_sim_project(
            [
                ("helper", HELPER_CLOCK),
                (
                    "emit",
                    """
                    from repro.sim.helper import stamp


                    def emit(rec):
                        rec.event("placed", elapsed_s=stamp())
                    """,
                ),
            ]
        )
        assert codes(diags, "OST010") == []

    def test_volatile_event_type_is_exempt(self):
        # deadline_tick is wall-clock telemetry by design; the whole
        # payload is excluded from replay comparison
        diags = lint_sim_project(
            [
                ("helper", HELPER_CLOCK),
                (
                    "emit",
                    """
                    from repro.sim.helper import stamp


                    def emit(rec):
                        rec.event("deadline_tick", budget=stamp())
                    """,
                ),
            ]
        )
        assert codes(diags, "OST010") == []

    def test_destructured_timing_wrapper_keeps_result_clean(self):
        # result, wall = _run_once(...): only the wall element carries
        # clock taint, so fingerprinting the result is fine
        diags = lint_sim_project(
            [
                (
                    "bench",
                    """
                    import time


                    def _run_once(fn):
                        start = time.perf_counter()
                        result = fn()
                        wall = time.perf_counter() - start
                        return result, wall


                    def measure(fn):
                        result, wall = _run_once(fn)
                        return rows_fingerprint(result)
                    """,
                ),
            ]
        )
        assert codes(diags, "OST010") == []

    def test_destructured_timing_wrapper_still_flags_wall(self):
        diags = lint_sim_project(
            [
                (
                    "bench",
                    """
                    import time


                    def _run_once(fn):
                        start = time.perf_counter()
                        result = fn()
                        wall = time.perf_counter() - start
                        return result, wall


                    def measure(fn):
                        result, wall = _run_once(fn)
                        return rows_fingerprint(wall)
                    """,
                ),
            ]
        )
        assert len(codes(diags, "OST010")) == 1

    def test_rng_never_reaching_sink_is_clean(self):
        diags = lint_sim_project(
            [
                (
                    "jitter",
                    """
                    import random
                    import time


                    def backoff():
                        return random.random()


                    def wait():
                        time.sleep(backoff())
                    """,
                ),
            ]
        )
        assert codes(diags, "OST010") == []

    def test_seeded_rng_is_clean(self):
        diags = lint_sim_project(
            [
                (
                    "seeded",
                    """
                    import random


                    def sample(rows):
                        rng = random.Random(7)
                        return rows_fingerprint(rows, rng.random())
                    """,
                ),
            ]
        )
        assert codes(diags, "OST010") == []


class TestCrossModuleWrites:
    """OST011: no laundering resource writes through foreign helpers."""

    WRITER = """
        def _drain(state):
            state.free_cpu[0] = 0
        """

    def test_foreign_laundered_write_fires(self):
        diags = lint_sim_project(
            [
                ("helper", self.WRITER),
                (
                    "caller",
                    """
                    from repro.sim.helper import _drain


                    def evict(state):
                        _drain(state)
                    """,
                ),
            ]
        )
        found = codes(diags, "OST011")
        assert len(found) == 1
        assert found[0].path == "src/repro/sim/caller.py"
        assert "repro.sim.helper" in found[0].message

    def test_same_module_helper_is_clean(self):
        diags = lint_sim_project(
            [
                (
                    "helper",
                    self.WRITER
                    + """

                    def evict(state):
                        _drain(state)
                    """,
                ),
            ]
        )
        assert codes(diags, "OST011") == []

    def test_sanctioned_public_api_is_clean(self):
        diags = lint_project_sources(
            [
                (
                    "src/repro/datacenter/resources.py",
                    textwrap.dedent(
                        """
                        def release(state, host):
                            state.free_cpu[host] += 1
                        """
                    ),
                ),
                (
                    "src/repro/sim/caller.py",
                    textwrap.dedent(
                        """
                        from repro.datacenter.resources import release


                        def evict(state, host):
                            release(state, host)
                        """
                    ),
                ),
            ],
            modules={
                "src/repro/datacenter/resources.py": (
                    "repro.datacenter.resources"
                ),
                "src/repro/sim/caller.py": "repro.sim.caller",
            },
        )
        assert codes(diags, "OST011") == []


CANDIDATES_MODULE = """
    from typing import NamedTuple


    class CandidateTarget(NamedTuple):
        host: int
        cpu: float
        disk: float


    def candidate_targets(tuples):
        return [t.host for t in tuples if t.cpu > 0]
    """


def lint_parity_project(kernel_source, candidates_source=CANDIDATES_MODULE):
    files = [
        ("src/repro/core/candidates.py", textwrap.dedent(candidates_source)),
        ("src/repro/core/kernel.py", textwrap.dedent(kernel_source)),
    ]
    return lint_project_sources(
        files,
        modules={
            "src/repro/core/candidates.py": "repro.core.candidates",
            "src/repro/core/kernel.py": "repro.core.kernel",
        },
    )


class TestKernelParity:
    """OST012: numpy/python twins must touch identical footprints."""

    def test_field_drift_fires_on_the_blind_side(self):
        diags = lint_parity_project(
            """
            def candidate_targets_numpy(tuples):
                return [(t.host, t.cpu, t.disk) for t in tuples]
            """
        )
        found = codes(diags, "OST012")
        assert len(found) == 1
        # the python side never touches 'disk'; report lands there
        assert found[0].path == "src/repro/core/candidates.py"
        assert "disk" in found[0].message
        assert "candidate_targets" in found[0].message

    def test_matching_footprints_are_clean(self):
        diags = lint_parity_project(
            """
            def candidate_targets_numpy(tuples):
                return [(t.host, t.cpu) for t in tuples]
            """
        )
        assert codes(diags, "OST012") == []

    def test_private_helper_closure_is_included(self):
        # the numpy side reads 'cpu' inside a private helper: still part
        # of its footprint, so the pair stays balanced
        diags = lint_parity_project(
            """
            def _cpu_of(t):
                return t.cpu


            def candidate_targets_numpy(tuples):
                return [(t.host, _cpu_of(t)) for t in tuples]
            """
        )
        assert codes(diags, "OST012") == []

    def test_private_class_instantiation_closure(self):
        # _Batch(...).run() style: methods of an instantiated private
        # class join the closure even though the call is unresolvable
        diags = lint_parity_project(
            """
            class _Batch:
                def __init__(self, tuples):
                    self.tuples = tuples

                def run(self):
                    return [(t.host, t.cpu) for t in self.tuples]


            def candidate_targets_numpy(tuples):
                return _Batch(tuples).run()
            """
        )
        assert codes(diags, "OST012") == []

    def test_metric_drift_fires(self):
        diags = lint_parity_project(
            """
            def candidate_targets_numpy(tuples, rec):
                rec.inc("kernel.batches")
                return [(t.host, t.cpu) for t in tuples]
            """
        )
        found = codes(diags, "OST012")
        assert len(found) == 1
        assert "kernel.batches" in found[0].message
        assert "metric" in found[0].message

    def test_missing_twin_is_skipped(self):
        diags = lint_parity_project(
            """
            def unrelated(tuples):
                return len(tuples)
            """
        )
        assert codes(diags, "OST012") == []
