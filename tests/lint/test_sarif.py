"""SARIF 2.1.0 rendering: structure, ordering, and byte stability."""

from __future__ import annotations

import json

from repro import __version__
from repro.lint import every_rule, render_sarif
from repro.lint.diagnostics import Diagnostic
from repro.lint.sarif import SARIF_VERSION


def diag(path="src/repro/core/fx.py", line=3, col=5, code="OST006"):
    return Diagnostic(
        path=path,
        line=line,
        col=col,
        code=code,
        rule="no-print",
        message="print() bypasses the recorder",
    )


class TestStructure:
    def test_clean_run_still_lists_the_catalogue(self):
        payload = json.loads(render_sarif([], files_checked=7))
        assert payload["version"] == SARIF_VERSION
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "ostrolint"
        assert driver["version"] == __version__
        assert [r["id"] for r in driver["rules"]] == [
            rule.code for rule in every_rule()
        ]
        assert run["results"] == []
        assert run["properties"]["filesChecked"] == 7

    def test_result_location_and_rule_index(self):
        payload = json.loads(render_sarif([diag()], files_checked=1))
        (result,) = payload["runs"][0]["results"]
        assert result["ruleId"] == "OST006"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "src/repro/core/fx.py"
        )
        assert location["region"] == {"startLine": 3, "startColumn": 5}
        rules = payload["runs"][0]["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "OST006"

    def test_syntax_error_has_no_rule_index(self):
        syntax = Diagnostic(
            path="bad.py",
            line=1,
            col=1,
            code="OST000",
            rule="syntax-error",
            message="invalid syntax",
        )
        payload = json.loads(render_sarif([syntax], files_checked=1))
        (result,) = payload["runs"][0]["results"]
        assert "ruleIndex" not in result

    def test_results_are_sorted_by_location(self):
        diags = [
            diag(path="b.py", line=9),
            diag(path="a.py", line=2),
            diag(path="a.py", line=1),
        ]
        payload = json.loads(render_sarif(diags, files_checked=2))
        seen = [
            (
                r["locations"][0]["physicalLocation"]["artifactLocation"][
                    "uri"
                ],
                r["locations"][0]["physicalLocation"]["region"][
                    "startLine"
                ],
            )
            for r in payload["runs"][0]["results"]
        ]
        assert seen == [("a.py", 1), ("a.py", 2), ("b.py", 9)]


class TestByteStability:
    def test_double_render_is_byte_identical(self):
        diags = [diag(), diag(path="src/repro/core/other.py", line=8)]
        assert render_sarif(diags, 2) == render_sarif(diags, 2)

    def test_golden_shape(self):
        """Lock the serialization contract a SARIF consumer relies on."""
        golden = (
            "{\n"
            '  "$schema": "https://raw.githubusercontent.com/oasis-tcs/'
            'sarif-spec/master/Schemata/sarif-schema-2.1.0.json",\n'
            '  "runs": ['
        )
        rendered = render_sarif([diag()], files_checked=1)
        assert rendered.startswith(golden)
        # sorted keys, two-space indentation, no trailing newline
        assert rendered.endswith('"version": "2.1.0"\n}')
        payload = json.loads(rendered)
        assert list(payload) == sorted(payload)
