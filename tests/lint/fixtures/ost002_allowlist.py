# ostrolint-fixture module: repro.core.astar
"""OST002 allowlist fixture: only ``BAStar._run`` may read the clock."""
import time


class BAStar:
    def _run(self) -> float:
        def probe() -> float:
            # nested scope inside an allowed qualname: still allowed
            return time.perf_counter()

        return probe() + time.monotonic()

    def _helper(self) -> float:
        return time.monotonic()  # expect: OST002
