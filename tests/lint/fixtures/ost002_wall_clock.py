# ostrolint-fixture module: repro.core.fixture_ost002
"""OST002 fixture: wall-clock reads outside the timing allowlist."""
import time
from datetime import datetime


def stamp() -> float:
    return time.perf_counter()  # expect: OST002


def label() -> str:
    return datetime.now().isoformat()  # expect: OST002


def threaded_in(elapsed_s: float) -> float:
    return elapsed_s
