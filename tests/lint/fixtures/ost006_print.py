# ostrolint-fixture module: repro.core.fixture_ost006
"""OST006 fixture: no ``print()`` in library code."""


def report(value: float) -> None:
    print(f"value={value}")  # expect: OST006


def format_only(value: float) -> str:
    return f"value={value}"
