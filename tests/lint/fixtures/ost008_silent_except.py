# ostrolint-fixture module: repro.core.fixture_ost008
"""OST008 fixture: no silent exception swallowing in library code."""
import tokenize

from repro.errors import CapacityError, ReproError, TransientAPIError


def bare_except() -> int:
    try:
        return 1
    except:  # noqa: E722  # expect: OST008
        return 0


def broad_swallow() -> int:
    try:
        return 1
    except Exception:  # expect: OST008
        return 0


def base_exception_swallow() -> int:
    try:
        return 1
    except (ValueError, BaseException):  # expect: OST008
        return 0


def noop_handler() -> None:
    try:
        pass
    except tokenize.TokenError:  # expect: OST008
        pass


def ellipsis_handler() -> None:
    try:
        pass
    except CapacityError:  # expect: OST008
        ...


def broad_but_reraises() -> int:
    try:
        return 1
    except Exception as exc:
        raise ReproError("wrapped") from exc


def narrow_handled(log: list) -> int:
    try:
        return 1
    except TransientAPIError as exc:
        log.append(str(exc))
        return 0


def justified() -> None:
    try:
        pass
    except tokenize.TokenError:  # ostrolint: disable=OST008
        pass
