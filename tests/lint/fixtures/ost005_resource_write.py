# ostrolint-fixture module: repro.core.fixture_ost005
"""OST005 fixture: resource arrays are only written by their owners."""


def leak(state, host: int, amount: float) -> None:
    state.free_cpu[host] -= amount  # expect: OST005


def grow(state) -> None:
    state.free_bw.append(0.0)  # expect: OST005


def read_is_fine(state, host: int) -> float:
    return state.free_mem[host]
