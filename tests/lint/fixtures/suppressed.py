# ostrolint-fixture module: repro.core.fixture_suppressed
"""Suppression fixture: inline disables silence exact codes only."""
import random


def one_code() -> float:
    return random.random()  # ostrolint: disable=OST001


def all_codes() -> None:
    print(random.random())  # ostrolint: disable


def wrong_code() -> float:
    return random.random()  # ostrolint: disable=OST006  # expect: OST001
