# ostrolint-fixture module: repro.core.fixture_ost001
"""OST001 fixture: module-level random use in deterministic code."""
import random
from random import Random
from random import shuffle  # expect: OST001


def jitter() -> float:
    return random.random()  # expect: OST001


def seeded(seed: int) -> float:
    rng = random.Random(seed)
    rng2 = Random(seed)
    shuffle([])
    return rng.random() + rng2.random()
