# ostrolint-fixture module: repro.core.candidates
"""OST004 fixture: the scoring pipeline must not mutate model params."""
from typing import List


def enumerate_hosts(cloud, partial) -> List[int]:
    hosts = list(cloud.hosts)
    partial.assignments["vm"] = 0  # expect: OST004
    return hosts


def score(topology, weight: float) -> float:
    topology.nodes.append("vm")  # expect: OST004
    return weight


def annotated(plan: "PartialPlacement", k: int) -> None:
    plan.slots[k] = 1  # expect: OST004


def rebind_is_fine(state) -> None:
    state = None
    del state


def closure_inherits(partial) -> None:
    def inner() -> None:
        partial.marks["a"] = 1  # expect: OST004

    inner()
