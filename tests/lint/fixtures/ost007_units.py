# ostrolint-fixture module: repro.core.fixture_ost007
"""OST007 fixture: quantity identifiers need unit suffixes."""
from typing import Tuple


def reserve(bw, capacity_gb: float) -> None:  # expect: OST007
    del bw, capacity_gb


def window(deadline: float, timeout_s: float) -> float:  # expect: OST007
    return deadline + timeout_s


class Request:
    mem: float  # expect: OST007
    mem_gb: float = 0.0
    theta_bw: float = 0.5
    node_count: int = 0
    bw_range_mbps: Tuple[float, float] = (0.0, 0.0)
    bw_window: Tuple[float, float] = (0.0, 0.0)
