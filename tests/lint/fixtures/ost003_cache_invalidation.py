# ostrolint-fixture module: repro.core.fixture_ost003
"""OST003 fixture: mutators must call ``_invalidate_caches()``."""
from typing import List, Optional


class Topology:
    def __init__(self) -> None:
        self._names: List[str] = []
        self._order_cache: Optional[List[str]] = None

    def _invalidate_caches(self) -> None:
        self._order_cache = None

    def add_name(self, name: str) -> None:
        self._names.append(name)  # expect: OST003

    def rename(self, old: str, new: str) -> None:
        self._names = [new if n == old else n for n in self._names]
        self._invalidate_caches()

    def copy(self) -> "Topology":
        duplicate = Topology()
        duplicate._names = list(self._names)
        return duplicate

    def order(self) -> List[str]:
        if self._order_cache is None:
            self._order_cache = sorted(self._names)
        return self._order_cache


class NoHook:
    """Classes without the hook are out of scope for the rule."""

    def __init__(self) -> None:
        self._names: List[str] = []

    def add_name(self, name: str) -> None:
        self._names.append(name)
