"""CLI contract for ``repro lint``: exit codes, formats, flags."""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.cli import main
from repro.lint import known_codes


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Run every CLI test from a scratch directory so the default cache
    and baseline paths never touch the real repo."""
    monkeypatch.chdir(tmp_path)


@pytest.fixture
def offending_file(tmp_path):
    """A file whose on-disk path infers a repro.core module, so the
    module-scoped rules engage exactly as they would under src/."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    target = pkg / "fx.py"
    target.write_text("print('x')\n")
    return target


class TestExitCodes:
    def test_clean_file_exits_0(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0
        out = capsys.readouterr().out
        assert "no problems found" in out

    def test_findings_exit_1(self, offending_file, capsys):
        rc = main(["lint", str(offending_file)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "OST006" in out
        assert "found 1 problem(s)" in out

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", "does/not/exist"]) == 2
        assert "error" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_output_parses_and_carries_schema(
        self, offending_file, capsys
    ):
        rc = main(["lint", str(offending_file), "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["counts"] == {"OST006": 1}
        (entry,) = payload["diagnostics"]
        assert entry["code"] == "OST006"
        assert entry["rule"] == "no-print"


class TestListRules:
    def test_lists_every_registered_code(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in known_codes():
            assert code in out


class TestSarifFormat:
    def test_sarif_output_is_valid_and_located(
        self, offending_file, capsys
    ):
        rc = main(["lint", str(offending_file), "--format", "sarif"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "ostrolint"
        (result,) = run["results"]
        assert result["ruleId"] == "OST006"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1

    def test_clean_sarif_exits_0(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []


class TestBaseline:
    def test_update_then_enforce(self, offending_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main(
            [
                "lint",
                str(offending_file),
                "--update-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        assert rc == 0
        assert "wrote 1 entry" in capsys.readouterr().err
        assert baseline.exists()

        rc = main(
            ["lint", str(offending_file), "--baseline", str(baseline)]
        )
        assert rc == 0
        assert "no problems found" in capsys.readouterr().out

    def test_new_finding_beyond_baseline_fails(
        self, offending_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        main(
            [
                "lint",
                str(offending_file),
                "--update-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        capsys.readouterr()
        offending_file.write_text("print('x')\nprint('y')\n")
        rc = main(
            ["lint", str(offending_file), "--baseline", str(baseline)]
        )
        assert rc == 1
        # only the finding the baseline does not cover is reported
        assert "found 1 problem(s)" in capsys.readouterr().out

    def test_stale_entries_are_reported(
        self, offending_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        main(
            [
                "lint",
                str(offending_file),
                "--update-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        capsys.readouterr()
        offending_file.write_text("x = 1\n")
        rc = main(
            ["lint", str(offending_file), "--baseline", str(baseline)]
        )
        assert rc == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_malformed_baseline_exits_2(
        self, offending_file, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{}")
        rc = main(
            ["lint", str(offending_file), "--baseline", str(baseline)]
        )
        assert rc == 2
        assert "bad baseline" in capsys.readouterr().err


def _git(*argv, cwd):
    subprocess.run(
        ["git", *argv],
        cwd=cwd,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(cwd),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


class TestChangedFlag:
    def test_only_touched_files_are_reported(
        self, offending_file, tmp_path, capsys
    ):
        _git("init", "-q", cwd=tmp_path)
        _git("add", "-A", cwd=tmp_path)
        _git("commit", "-q", "-m", "seed", cwd=tmp_path)
        # the committed offender is untouched; only the new clean file
        # is in report scope
        extra = tmp_path / "repro" / "core" / "extra.py"
        extra.write_text("x = 1\n")
        rc = main(["lint", str(tmp_path / "repro"), "--changed"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no problems found" in out

    def test_touched_offender_fails(self, offending_file, tmp_path, capsys):
        _git("init", "-q", cwd=tmp_path)
        # untracked counts as changed
        rc = main(["lint", str(tmp_path / "repro"), "--changed"])
        assert rc == 1
        assert "OST006" in capsys.readouterr().out

    def test_clean_tree_exits_0(self, offending_file, tmp_path, capsys):
        _git("init", "-q", cwd=tmp_path)
        _git("add", "-A", cwd=tmp_path)
        _git("commit", "-q", "-m", "seed", cwd=tmp_path)
        rc = main(["lint", str(tmp_path / "repro"), "--changed"])
        assert rc == 0
        assert "no problems found" in capsys.readouterr().out


class TestCacheFlags:
    def test_cache_file_written_and_reused(
        self, offending_file, tmp_path, capsys
    ):
        cache = tmp_path / "cache.json"
        rc = main(
            [
                "lint",
                str(offending_file),
                "--cache-path",
                str(cache),
                "--format",
                "json",
            ]
        )
        assert rc == 1
        cold = capsys.readouterr().out
        assert cache.exists()
        rc = main(
            [
                "lint",
                str(offending_file),
                "--cache-path",
                str(cache),
                "--format",
                "json",
            ]
        )
        assert rc == 1
        assert capsys.readouterr().out == cold

    def test_no_cache_writes_nothing(self, offending_file, tmp_path):
        main(["lint", str(offending_file), "--no-cache"])
        assert not (tmp_path / ".ostrolint-cache.json").exists()
