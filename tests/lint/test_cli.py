"""CLI contract for ``repro lint``: exit codes, formats, --list-rules."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lint import known_codes


@pytest.fixture
def offending_file(tmp_path):
    """A file whose on-disk path infers a repro.core module, so the
    module-scoped rules engage exactly as they would under src/."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    target = pkg / "fx.py"
    target.write_text("print('x')\n")
    return target


class TestExitCodes:
    def test_clean_file_exits_0(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0
        out = capsys.readouterr().out
        assert "no problems found" in out

    def test_findings_exit_1(self, offending_file, capsys):
        rc = main(["lint", str(offending_file)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "OST006" in out
        assert "found 1 problem(s)" in out

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", "does/not/exist"]) == 2
        assert "error" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_output_parses_and_carries_schema(
        self, offending_file, capsys
    ):
        rc = main(["lint", str(offending_file), "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["counts"] == {"OST006": 1}
        (entry,) = payload["diagnostics"]
        assert entry["code"] == "OST006"
        assert entry["rule"] == "no-print"


class TestListRules:
    def test_lists_every_registered_code(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in known_codes():
            assert code in out
