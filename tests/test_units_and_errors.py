"""Tests for unit helpers and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors, units


class TestUnits:
    def test_gbps_roundtrip(self):
        assert units.gbps(10) == 10_000.0
        assert units.mbps_to_gbps(units.gbps(3.2)) == pytest.approx(3.2)

    def test_tb(self):
        assert units.tb(1) == 1000.0
        assert units.tb(0.5) == 500.0


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.TopologyError,
            errors.TemplateError,
            errors.DataCenterError,
            errors.CapacityError,
            errors.PlacementError,
            errors.SchedulerError,
            errors.DeadlineError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_placement_error_carries_node(self):
        exc = errors.PlacementError("no host", node_name="db0")
        assert exc.node_name == "db0"
        assert errors.PlacementError("x").node_name is None
