"""Tests for the Nova filter-scheduler surrogate."""

from __future__ import annotations

import pytest

from repro.datacenter.state import DataCenterState
from repro.errors import SchedulerError
from repro.openstack.api import ServerRequest, flavor_by_name
from repro.openstack.nova import (
    CoreFilter,
    CoreWeigher,
    NovaScheduler,
    RamFilter,
    RamWeigher,
)


@pytest.fixture
def state(small_dc):
    return DataCenterState(small_dc)


class TestFilters:
    def test_core_filter(self, state):
        f = CoreFilter()
        req = ServerRequest("x", vcpus=16, ram_gb=1)
        assert f.passes(state, 0, req)
        state.place_vm(0, 1, 1)
        assert not f.passes(state, 0, req)

    def test_core_filter_overcommit(self, state):
        f = CoreFilter(allocation_ratio=2.0)
        req = ServerRequest("x", vcpus=20, ram_gb=1)
        assert f.passes(state, 0, req)

    def test_ram_filter(self, state):
        f = RamFilter()
        req = ServerRequest("x", vcpus=1, ram_gb=32)
        assert f.passes(state, 0, req)
        state.place_vm(0, 1, 1)
        assert not f.passes(state, 0, req)


class TestWeighers:
    def test_ram_weigher_spreads(self, state):
        state.place_vm(0, 2, 16)
        scheduler = NovaScheduler(state, weighers=[RamWeigher()])
        host = scheduler.select_host(ServerRequest("x", 1, 1))
        assert host != 0  # host 0 has the least free RAM

    def test_core_weigher(self, state):
        state.place_vm(0, 8, 1)
        scheduler = NovaScheduler(state, weighers=[CoreWeigher()])
        host = scheduler.select_host(ServerRequest("x", 1, 1))
        assert host != 0


class TestScheduling:
    def test_create_reserves_resources(self, state):
        scheduler = NovaScheduler(state)
        server = scheduler.create_server(ServerRequest("web", 4, 8))
        host = state.cloud.host_by_name(server.host).index
        assert state.free_cpu[host] == 12
        assert state.host_is_active(host)

    def test_no_valid_host_raises(self, state):
        scheduler = NovaScheduler(state)
        with pytest.raises(SchedulerError, match="no valid host"):
            scheduler.create_server(ServerRequest("big", 100, 1))

    def test_force_host_hint(self, state):
        scheduler = NovaScheduler(state)
        target = state.cloud.hosts[7].name
        server = scheduler.create_server(
            ServerRequest("x", 2, 2, scheduler_hints={"force_host": target})
        )
        assert server.host == target

    def test_force_host_unsatisfiable(self, state):
        state.place_vm(7, 16, 1)
        scheduler = NovaScheduler(state)
        target = state.cloud.hosts[7].name
        with pytest.raises(SchedulerError):
            scheduler.create_server(
                ServerRequest(
                    "x", 4, 2, scheduler_hints={"force_host": target}
                )
            )

    def test_delete_restores(self, state):
        scheduler = NovaScheduler(state)
        before = state.snapshot()
        request = ServerRequest("x", 2, 2)
        server = scheduler.create_server(request)
        scheduler.delete_server(server, request)
        assert state.snapshot() == before

    def test_independent_scheduling_ignores_links(self, state):
        """Nova knows nothing about pipes: two chatty VMs may land far
        apart. This is the behavior Ostro improves on."""
        scheduler = NovaScheduler(state)
        a = scheduler.create_server(ServerRequest("a", 2, 16))
        b = scheduler.create_server(ServerRequest("b", 2, 16))
        # RAM-spreading weigher actively separates them
        assert a.host != b.host


class TestFlavors:
    def test_from_flavor(self):
        req = ServerRequest.from_flavor("web", "m1.large")
        assert (req.vcpus, req.ram_gb) == (4, 8)

    def test_unknown_flavor(self):
        with pytest.raises(SchedulerError):
            flavor_by_name("m1.galactic")
