"""Tests for Nova's affinity/anti-affinity hint filters."""

from __future__ import annotations

import pytest

from repro.datacenter.state import DataCenterState
from repro.errors import SchedulerError
from repro.openstack.api import ServerRequest
from repro.openstack.nova import NovaScheduler


@pytest.fixture
def scheduler(small_dc):
    return NovaScheduler(DataCenterState(small_dc))


class TestDifferentHost:
    def test_avoids_named_hosts(self, scheduler, small_dc):
        first = scheduler.create_server(ServerRequest("a", 2, 2))
        second = scheduler.create_server(
            ServerRequest(
                "b", 2, 2, scheduler_hints={"different_host": [first.host]}
            )
        )
        assert second.host != first.host

    def test_string_form_accepted(self, scheduler, small_dc):
        target = small_dc.hosts[0].name
        server = scheduler.create_server(
            ServerRequest(
                "x", 2, 2, scheduler_hints={"different_host": target}
            )
        )
        assert server.host != target

    def test_unsatisfiable_when_all_hosts_named(self, scheduler, small_dc):
        everyone = [h.name for h in small_dc.hosts]
        with pytest.raises(SchedulerError):
            scheduler.create_server(
                ServerRequest(
                    "x", 2, 2, scheduler_hints={"different_host": everyone}
                )
            )


class TestSameHost:
    def test_restricts_to_named_hosts(self, scheduler, small_dc):
        wanted = small_dc.hosts[5].name
        server = scheduler.create_server(
            ServerRequest("x", 2, 2, scheduler_hints={"same_host": wanted})
        )
        assert server.host == wanted

    def test_full_named_host_fails(self, scheduler, small_dc):
        wanted = small_dc.hosts[5].name
        scheduler.state.place_vm(5, 16, 1)
        with pytest.raises(SchedulerError):
            scheduler.create_server(
                ServerRequest(
                    "x", 2, 2, scheduler_hints={"same_host": wanted}
                )
            )


class TestHintsVersusZones:
    def test_hints_cannot_express_future_anti_affinity(self, small_dc):
        """The structural point of the paper: per-request hints only refer
        to already-placed servers, so the first two replicas of a group can
        land together unless the caller serializes and threads every
        placement -- Ostro's diversity zones handle the group at once."""
        from repro.core.scheduler import Ostro
        from repro.core.topology import ApplicationTopology
        from repro.datacenter.model import Level

        topo = ApplicationTopology("group")
        for i in range(3):
            topo.add_vm(f"r{i}", 2, 2)
        topo.add_zone("ha", Level.RACK, [f"r{i}" for i in range(3)])
        result = Ostro(small_dc).place(topo, algorithm="eg", commit=False)
        racks = {
            small_dc.hosts[result.placement.host_of(f"r{i}")].rack.name
            for i in range(3)
        }
        assert len(racks) == 3
