"""Tests for the Cinder volume-scheduler surrogate."""

from __future__ import annotations

import pytest

from repro.datacenter.state import DataCenterState
from repro.errors import SchedulerError
from repro.openstack.api import VolumeRequest
from repro.openstack.cinder import CinderScheduler


@pytest.fixture
def state(small_dc):
    return DataCenterState(small_dc)


class TestScheduling:
    def test_create_reserves_capacity(self, state):
        scheduler = CinderScheduler(state)
        record = scheduler.create_volume(VolumeRequest("data", 100))
        disk = state.cloud.disk_by_name(record.disk).index
        assert state.free_disk[disk] == 900
        assert record.host == state.cloud.disks[disk].host.name

    def test_capacity_weigher_prefers_emptiest(self, state):
        state.place_volume(0, 500)
        scheduler = CinderScheduler(state)
        record = scheduler.create_volume(VolumeRequest("data", 100))
        assert record.disk != state.cloud.disks[0].name

    def test_no_valid_disk_raises(self, state):
        scheduler = CinderScheduler(state)
        with pytest.raises(SchedulerError, match="no valid disk"):
            scheduler.create_volume(VolumeRequest("big", 100_000))

    def test_force_disk_hint(self, state):
        scheduler = CinderScheduler(state)
        target = state.cloud.disks[5].name
        record = scheduler.create_volume(
            VolumeRequest("data", 50, scheduler_hints={"force_disk": target})
        )
        assert record.disk == target

    def test_force_disk_unsatisfiable(self, state):
        state.place_volume(5, 1000)
        scheduler = CinderScheduler(state)
        target = state.cloud.disks[5].name
        with pytest.raises(SchedulerError):
            scheduler.create_volume(
                VolumeRequest(
                    "data", 50, scheduler_hints={"force_disk": target}
                )
            )

    def test_delete_restores(self, state):
        scheduler = CinderScheduler(state)
        before = state.snapshot()
        request = VolumeRequest("data", 100)
        record = scheduler.create_volume(request)
        scheduler.delete_volume(record, request)
        assert state.snapshot() == before
