"""Cross-module integration tests.

These exercise the complete Fig. 1 pipeline and multi-tenant lifecycles:
several applications arriving through the Heat wrapper onto one shared
Ostro instance, departures releasing capacity exactly, and placements on
multi-data-center clouds with every diversity level in play.
"""

from __future__ import annotations

import pytest

from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_cloud, build_datacenter
from repro.datacenter.model import Level
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from repro.heat.engine import HeatEngine
from repro.heat.template import template_from_topology
from repro.heat.wrapper import OstroHeatWrapper
from tests.conftest import make_three_tier
from tests.core.test_greedy import verify_placement_feasible


class TestMultiTenantLifecycle:
    def test_arrivals_and_departures_conserve_state(self, small_dc):
        ostro = Ostro(small_dc)
        pristine = ostro.state.snapshot()
        apps = []
        for i in range(3):
            app = make_three_tier().copy(f"tenant{i}")
            ostro.place(app, algorithm="eg")
            apps.append(app)
        # remove the middle tenant; the other two keep their reservations
        ostro.remove("tenant1")
        assert set(ostro.applications) == {"tenant0", "tenant2"}
        ostro.remove("tenant0")
        ostro.remove("tenant2")
        assert ostro.state.snapshot() == pristine

    def test_later_tenants_see_earlier_reservations(self, small_dc):
        ostro = Ostro(small_dc)
        first = make_three_tier().copy("first")
        second = make_three_tier().copy("second")
        r1 = ostro.place(first, algorithm="eg")
        base = ostro.state.clone()
        r2 = ostro.place(second, algorithm="eg", commit=False)
        # second's placement is feasible on top of first's reservations
        verify_placement_feasible(second, small_dc, base, r2.placement)

    def test_heat_pipeline_multi_stack(self, small_dc):
        ostro = Ostro(small_dc)
        wrapper = OstroHeatWrapper(ostro)
        engine = HeatEngine(DataCenterState(small_dc))
        for i in range(2):
            topo = make_three_tier().copy(f"stack{i}")
            template = template_from_topology(topo)
            response = wrapper.handle(
                template, stack_name=f"stack{i}", algorithm="eg"
            )
            stack = engine.deploy(response.annotated_template, f"stack{i}")
            for name in topo.nodes:
                expected = small_dc.hosts[
                    response.result.placement.host_of(name)
                ].name
                assert stack.host_of(name) == expected
        assert len(engine.stacks) == 2


class TestMultiDataCenter:
    @pytest.fixture
    def cloud(self):
        return build_cloud(
            num_datacenters=3, pods_per_dc=2, racks_per_pod=2, hosts_per_rack=4
        )

    def test_datacenter_diversity_spreads_across_dcs(self, cloud):
        topo = ApplicationTopology("geo")
        for i in range(3):
            topo.add_vm(f"replica{i}", 4, 8)
        topo.add_zone(
            "geo-ha", Level.DATACENTER, [f"replica{i}" for i in range(3)]
        )
        ostro = Ostro(cloud)
        result = ostro.place(topo, algorithm="eg", commit=False)
        dcs = {
            cloud.hosts[result.placement.host_of(f"replica{i}")]
            .rack.datacenter.name
            for i in range(3)
        }
        assert len(dcs) == 3

    def test_wan_bandwidth_accounted(self, cloud):
        topo = ApplicationTopology("wan")
        topo.add_vm("a", 4, 8)
        topo.add_vm("b", 4, 8)
        topo.connect("a", "b", 500)
        topo.add_zone("far", Level.DATACENTER, ["a", "b"])
        ostro = Ostro(cloud)
        result = ostro.place(topo, algorithm="eg")
        # cross-DC path: 8 links (2x NIC, ToR, pod, WAN)
        assert result.reserved_bw_mbps == 500 * 8
        a_dc = cloud.hosts[result.placement.host_of("a")].rack.datacenter
        wan_free = ostro.state.free_bw[a_dc.link_index]
        assert wan_free == a_dc.uplink_bw_mbps - 500

    def test_pod_diversity_with_real_pods(self, cloud):
        topo = ApplicationTopology("pods")
        topo.add_vm("x", 2, 2)
        topo.add_vm("y", 2, 2)
        topo.add_zone("pod-ha", Level.POD, ["x", "y"])
        result = Ostro(cloud).place(topo, algorithm="eg", commit=False)
        hx = cloud.hosts[result.placement.host_of("x")]
        hy = cloud.hosts[result.placement.host_of("y")]
        assert hx.rack.pod is not hy.rack.pod

    def test_unsatisfiable_dc_diversity(self):
        single_dc = build_datacenter(num_racks=2, hosts_per_rack=2)
        topo = ApplicationTopology("impossible")
        topo.add_vm("a", 1, 1)
        topo.add_vm("b", 1, 1)
        topo.add_zone("geo", Level.DATACENTER, ["a", "b"])
        with pytest.raises(PlacementError):
            Ostro(single_dc).place(topo, algorithm="eg")


class TestAlgorithmsAgreeOnEasyInstances:
    def test_all_algorithms_find_the_trivial_optimum(self, small_dc):
        """A fully co-locatable app: every algorithm must reserve zero."""
        topo = ApplicationTopology("tiny")
        topo.add_vm("a", 2, 2)
        topo.add_vm("b", 2, 2)
        topo.add_volume("v", 50)
        topo.connect("a", "b", 100)
        topo.connect("b", "v", 100)
        for algorithm in ("eg", "egbw", "ba*", "dba*"):
            result = Ostro(small_dc).place(
                topo, algorithm=algorithm, commit=False,
                **({"deadline_s": 0.5} if algorithm == "dba*" else {}),
            )
            assert result.reserved_bw_mbps == 0.0, algorithm
            assert result.placement.hosts_used == 1, algorithm
