"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.heat.template import template_from_topology
from tests.conftest import make_three_tier


@pytest.fixture
def template_file(tmp_path):
    template = template_from_topology(make_three_tier())
    path = tmp_path / "stack.json"
    path.write_text(json.dumps(template))
    return str(path)


class TestPlace:
    def test_place_outputs_annotated_template(self, template_file, capsys):
        rc = main(
            [
                "place",
                "--template",
                template_file,
                "--dc",
                "dc:4",
                "--algorithm",
                "eg",
            ]
        )
        assert rc == 0
        out, err = capsys.readouterr()
        annotated = json.loads(out)
        assert any(
            "scheduler_hints" in r.get("properties", {})
            for r in annotated["resources"].values()
        )
        assert "reserved bandwidth" in err

    def test_bad_dc_spec(self, template_file, capsys):
        rc = main(["place", "--template", template_file, "--dc", "moon"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_placement_failure_exits_2_with_diagnostic(self, tmp_path, capsys):
        from repro.core.topology import ApplicationTopology

        impossible = ApplicationTopology("huge")
        impossible.add_vm("big", vcpus=10_000, mem_gb=10_000)
        path = tmp_path / "huge.json"
        path.write_text(json.dumps(template_from_topology(impossible)))
        rc = main(["place", "--template", str(path), "--dc", "dc:4"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "placement failed" in err
        assert "Traceback" not in err


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_version_single_source(self):
        """pyproject must defer to repro.__version__ (no drift)."""
        from pathlib import Path

        pyproject = (
            Path(__file__).parent.parent / "pyproject.toml"
        ).read_text()
        assert 'dynamic = ["version"]' in pyproject
        assert "repro.__version__" in pyproject
        assert "\nversion = \"" not in pyproject.split("[tool.setuptools.dynamic]")[0]


class TestTelemetryFlags:
    def test_place_writes_trace_and_metrics(
        self, template_file, tmp_path, capsys
    ):
        from repro import obs

        trace_out = tmp_path / "trace.jsonl"
        metrics_out = tmp_path / "metrics.txt"
        rc = main(
            [
                "place",
                "--template",
                template_file,
                "--dc",
                "dc:4",
                "--algorithm",
                "dba*",
                "--deadline",
                "1.0",
                "--trace-out",
                str(trace_out),
                "--metrics-out",
                str(metrics_out),
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "ostro telemetry summary" in err

        # every line validates against the schema; the search left a trail
        events = obs.EventLog.read_jsonl(
            trace_out.read_text().splitlines()
        )
        types = {e["type"] for e in events}
        assert "estimate_computed" in types
        assert "placement_finished" in types

        metrics = metrics_out.read_text()
        assert "ostro_nodes_expanded_total" in metrics
        assert "ostro_estimate_seconds_bucket" in metrics
        assert 'ostro_placements_total{algorithm="dba*"} 1' in metrics

        # the CLI must restore the no-op recorder afterwards
        assert not obs.is_enabled()

    def test_no_flags_means_no_telemetry(self, template_file, capsys):
        from repro import obs

        rc = main(
            ["place", "--template", template_file, "--dc", "dc:4"]
        )
        assert rc == 0
        assert "telemetry summary" not in capsys.readouterr().err
        assert not obs.is_enabled()

    def test_unwritable_trace_path_is_a_clean_error(
        self, template_file, tmp_path, capsys
    ):
        rc = main(
            [
                "place",
                "--template",
                template_file,
                "--dc",
                "dc:4",
                "--trace-out",
                str(tmp_path / "no" / "such" / "dir" / "t.jsonl"),
            ]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "cannot write telemetry" in err
        assert "Traceback" not in err

    def test_sweep_accepts_metrics_out(self, tmp_path, capsys):
        metrics_out = tmp_path / "metrics.txt"
        rc = main(
            [
                "sweep",
                "fig7",
                "--sizes",
                "25",
                "--algorithms",
                "egc",
                "--metrics-out",
                str(metrics_out),
            ]
        )
        assert rc == 0
        assert "ostro_placements_total" in metrics_out.read_text()


class TestExperiments:
    def test_table2(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "EGC" in out and "DBA*" in out
        assert "Bandwidth (Mbps)" in out

    def test_online(self, capsys):
        rc = main(["experiment", "online", "--size", "25"])
        assert rc == 0
        assert "online adaptation" in capsys.readouterr().out


class TestSweep:
    def test_fig7_small(self, capsys):
        rc = main(
            [
                "sweep",
                "fig7",
                "--sizes",
                "25",
                "--algorithms",
                "egc",
                "eg",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "EGC" in out


class TestUtil:
    def test_pristine(self, capsys):
        rc = main(["util", "--dc", "dc:2", "--load", "none"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hosts: 0/32 active" in out

    def test_table_iv_load(self, capsys):
        rc = main(["util", "--dc", "dc:2", "--load", "tableiv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hosts: 24/32 active" in out


class TestSweepChart:
    def test_chart_flag(self, capsys):
        rc = main(
            [
                "sweep",
                "fig7",
                "--sizes",
                "25",
                "--algorithms",
                "egc",
                "--chart",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "o=EGC" in out


class TestReplay:
    def test_replay_prints_comparison(self, capsys):
        rc = main(
            [
                "replay",
                "--dc",
                "dc:2",
                "--arrivals",
                "5",
                "--algorithms",
                "egc",
                "eg",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replaying 5 tenants" in out
        assert "egc" in out and "eg" in out


class TestTradeoff:
    def test_tradeoff_runs(self, capsys):
        rc = main(
            ["tradeoff", "--size", "25", "--deadlines", "0.2", "0.4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig 6" in out
        assert out.count("\n") >= 4
