"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.heat.template import template_from_topology
from tests.conftest import make_three_tier


@pytest.fixture
def template_file(tmp_path):
    template = template_from_topology(make_three_tier())
    path = tmp_path / "stack.json"
    path.write_text(json.dumps(template))
    return str(path)


class TestPlace:
    def test_place_outputs_annotated_template(self, template_file, capsys):
        rc = main(
            [
                "place",
                "--template",
                template_file,
                "--dc",
                "dc:4",
                "--algorithm",
                "eg",
            ]
        )
        assert rc == 0
        out, err = capsys.readouterr()
        annotated = json.loads(out)
        assert any(
            "scheduler_hints" in r.get("properties", {})
            for r in annotated["resources"].values()
        )
        assert "reserved bandwidth" in err

    def test_bad_dc_spec(self, template_file, capsys):
        rc = main(["place", "--template", template_file, "--dc", "moon"])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestExperiments:
    def test_table2(self, capsys):
        rc = main(["experiment", "table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "EGC" in out and "DBA*" in out
        assert "Bandwidth (Mbps)" in out

    def test_online(self, capsys):
        rc = main(["experiment", "online", "--size", "25"])
        assert rc == 0
        assert "online adaptation" in capsys.readouterr().out


class TestSweep:
    def test_fig7_small(self, capsys):
        rc = main(
            [
                "sweep",
                "fig7",
                "--sizes",
                "25",
                "--algorithms",
                "egc",
                "eg",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "EGC" in out


class TestUtil:
    def test_pristine(self, capsys):
        rc = main(["util", "--dc", "dc:2", "--load", "none"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hosts: 0/32 active" in out

    def test_table_iv_load(self, capsys):
        rc = main(["util", "--dc", "dc:2", "--load", "tableiv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hosts: 24/32 active" in out


class TestSweepChart:
    def test_chart_flag(self, capsys):
        rc = main(
            [
                "sweep",
                "fig7",
                "--sizes",
                "25",
                "--algorithms",
                "egc",
                "--chart",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "o=EGC" in out


class TestReplay:
    def test_replay_prints_comparison(self, capsys):
        rc = main(
            [
                "replay",
                "--dc",
                "dc:2",
                "--arrivals",
                "5",
                "--algorithms",
                "egc",
                "eg",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replaying 5 tenants" in out
        assert "egc" in out and "eg" in out


class TestTradeoff:
    def test_tradeoff_runs(self, capsys):
        rc = main(
            ["tradeoff", "--size", "25", "--deadlines", "0.2", "0.4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig 6" in out
        assert out.count("\n") >= 4
