"""Sharded coordinator tests: routing, escalation, audits, rollback."""

from __future__ import annotations

import pytest

from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_cloud
from repro.datacenter.model import Level
from repro.errors import PlacementError
from repro.service.coordinator import ShardedCoordinator
from tests.conftest import make_three_tier


def tiny(name: str, vcpus: int = 2) -> ApplicationTopology:
    topo = ApplicationTopology(name)
    topo.add_vm("vm0", vcpus, 2)
    topo.add_vm("vm1", vcpus, 2)
    topo.connect("vm0", "vm1", 100)
    return topo


class TestRouting:
    def test_admission_lands_inside_one_shard(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        result, route = coordinator.admit(make_three_tier())
        shard = next(s for s in coordinator.shards if s.name == route)
        for assignment in result.placement.assignments.values():
            assert shard.owns_host(assignment.host)
        assert coordinator.routes["three-tier"] == route

    def test_load_spreads_across_shards(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        routes = {coordinator.admit(tiny(f"t{i}"))[1] for i in range(4)}
        # least-loaded-first routing cannot pile everything on one pod
        assert len(routes) >= 2

    def test_least_loaded_tie_breaks_on_shard_id(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        _, route = coordinator.admit(tiny("first"))
        assert route == coordinator.shards[0].name

    def test_duplicate_admission_raises(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        coordinator.admit(tiny("dup"))
        with pytest.raises(PlacementError):
            coordinator.admit(tiny("dup"))

    def test_remove_releases_and_forgets_route(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        before = coordinator.state.snapshot()
        coordinator.admit(tiny("gone"))
        coordinator.remove("gone")
        assert coordinator.state.snapshot() == before
        assert "gone" not in coordinator.routes
        assert coordinator.verify_state() == []


class TestEscalation:
    def test_pod_zone_escalates_cross_pod(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        topo = tiny("wide")
        topo.add_zone("z", Level.POD, ["vm0", "vm1"])
        result, route = coordinator.admit(topo)
        assert route == "global"
        assert coordinator.escalations == {"cross_pod": 1}
        hosts = {a.host for a in result.placement.assignments.values()}
        pods = {
            next(
                s.shard_id
                for s in coordinator.shards
                if s.owns_host(h)
            )
            for h in hosts
        }
        assert len(pods) == 2  # genuinely pod-separated

    def test_wide_host_zone_escalates_no_feasible_shard(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        topo = ApplicationTopology("spread")
        for i in range(5):  # every pod has only 4 hosts
            topo.add_vm(f"v{i}", 1, 1)
        topo.add_zone("z", Level.HOST, [f"v{i}" for i in range(5)])
        _, route = coordinator.admit(topo)
        assert route == "global"
        assert coordinator.escalations == {"no_feasible_shard": 1}

    def test_search_failure_everywhere_escalates_shard_infeasible(
        self, podded_cloud
    ):
        """A bandwidth-forced co-location that exceeds any single host
        passes every shard's screen but fails every shard's search -- and
        the global pass too. The escalation reason must still be
        recorded, and nothing committed."""
        coordinator = ShardedCoordinator(podded_cloud)
        topo = ApplicationTopology("hot-pair")
        topo.add_vm("a", 10, 2)
        topo.add_vm("b", 10, 2)
        topo.connect("a", "b", 20000)  # 20 Gbps: no inter-host path
        with pytest.raises(PlacementError):
            coordinator.admit(topo)
        assert coordinator.escalations == {"shard_infeasible": 1}
        assert "hot-pair" not in coordinator.ostro.applications
        assert coordinator.verify_state() == []


class TestSerialEquivalence:
    def test_single_shard_matches_plain_ostro(self):
        """With one pod owning every host, the masked view equals the
        global state, so the coordinator must place exactly like a plain
        serial Ostro."""
        cloud = build_cloud(
            num_datacenters=1, pods_per_dc=1, racks_per_pod=2,
            hosts_per_rack=4,
        )
        coordinator = ShardedCoordinator(cloud)
        reference = Ostro(cloud)
        for i in range(5):
            topo = tiny(f"app{i}", vcpus=2 + i % 3)
            result, route = coordinator.admit(topo)
            expected = reference.place(topo, algorithm="eg")
            assert route == coordinator.shards[0].name
            assert {
                n: (a.host, a.disk)
                for n, a in result.placement.assignments.items()
            } == {
                n: (a.host, a.disk)
                for n, a in expected.placement.assignments.items()
            }
        assert coordinator.state.snapshot() == reference.state.snapshot()


class TestRollback:
    def test_rollback_to_undoes_admissions(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        coordinator.admit(tiny("keeper"))
        snapshot = coordinator.state.snapshot()
        coordinator.admit(tiny("x1"))
        coordinator.admit(tiny("x2"))
        coordinator.rollback_to(snapshot, ["x1", "x2"])
        assert coordinator.state.snapshot() == snapshot
        assert set(coordinator.ostro.applications) == {"keeper"}
        assert set(coordinator.routes) == {"keeper"}
        assert coordinator.verify_state() == []


class TestUpdate:
    def test_update_keeps_capacity_conserved(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        coordinator.admit(tiny("grow"))
        grown = tiny("grow")
        grown.add_vm("vm2", 1, 1)
        grown.connect("vm2", "vm0", 50)
        update = coordinator.update(grown)
        assert update.added == ["vm2"]
        assert coordinator.verify_state() == []
        assert "grow" in coordinator.routes

    def test_audit_catches_route_registry_drift(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        coordinator.admit(tiny("tracked"))
        coordinator.routes["ghost"] = "global"
        findings = coordinator.verify_state()
        assert any("ghost" in finding for finding in findings)
