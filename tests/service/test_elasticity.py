"""Elasticity-path service tests: scale events end to end, departure
bookkeeping hardening, and the scaling-off determinism gate."""

from __future__ import annotations

import pytest

from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_cloud
from repro.scaling import ScalingConfig
from repro.service import ServiceConfig, run_service
from repro.sim.arrivals import (
    TraceEvent,
    WorkloadTrace,
    default_app_factory,
    event_sort_key,
)


@pytest.fixture(scope="module")
def pods4():
    return build_cloud(
        num_datacenters=1, pods_per_dc=4, racks_per_pod=2, hosts_per_rack=4
    )


def storm(arrivals=40, **kwargs):
    defaults = dict(
        mean_interarrival_s=15.0,
        mean_lifetime_s=600.0,
        seed=11,
        priority_levels=3,
        update_fraction=0.0,
        scale_every_s=120.0,
    )
    defaults.update(kwargs)
    return WorkloadTrace.poisson_storm(
        arrivals, default_app_factory, **defaults
    )


def scaling(**kwargs):
    defaults = dict(
        policy="threshold",
        tier_prefix="vm",
        scale_out_at=0.65,
        scale_in_at=0.45,
        step_fraction=0.5,
        cooldown_s=0.0,
        seed=11,
    )
    defaults.update(kwargs)
    return ScalingConfig(**defaults)


def crafted_trace(events):
    """A hand-written trace of tiny single-VM tenants."""
    trace = WorkloadTrace()
    trace.events = sorted(events, key=event_sort_key)
    for event in events:
        if event.app_id not in trace.topologies:
            topo = ApplicationTopology(f"app-{event.app_id}")
            topo.add_vm("vm0", vcpus=1, mem_gb=1)
            trace.topologies[event.app_id] = topo
    return trace


class TestDepartureBookkeeping:
    """Regression: crafted departure anomalies must neither raise
    KeyError out of ``run_service`` nor double-count cancellations."""

    def test_duplicate_departure_of_live_app_is_a_no_op(self, pods4):
        trace = crafted_trace(
            [
                TraceEvent(0.0, "arrive", 0),
                TraceEvent(100.0, "depart", 0),
                TraceEvent(150.0, "depart", 0),
            ]
        )
        report = run_service(trace, pods4, ServiceConfig(horizon_s=10.0))
        assert report.admitted == 1
        assert report.cancelled == 0
        assert report.audit_violations == []

    def test_duplicate_departure_of_queued_app_counts_once(self, pods4):
        # both departures land before the app's admission boundary
        trace = crafted_trace(
            [
                TraceEvent(0.0, "arrive", 0),
                TraceEvent(5.0, "depart", 0),
                TraceEvent(6.0, "depart", 0),
            ]
        )
        report = run_service(trace, pods4, ServiceConfig(horizon_s=50.0))
        assert report.cancelled == 1
        assert report.admitted == 0

    def test_departure_racing_expiry_does_not_double_count(self, pods4):
        # the request expires at the first drain (deadline << horizon);
        # its departure arrives later and must not raise or cancel
        trace = crafted_trace(
            [
                TraceEvent(0.0, "arrive", 0),
                TraceEvent(25.0, "depart", 0),
            ]
        )
        report = run_service(
            trace, pods4, ServiceConfig(horizon_s=20.0, deadline_s=1.0)
        )
        assert report.expired == 1
        assert report.cancelled == 0
        assert (
            report.admitted
            + report.rejected
            + report.expired
            + report.cancelled
            == report.requests
        )

    def test_departure_of_never_arrived_app_is_ignored(self, pods4):
        trace = crafted_trace(
            [
                TraceEvent(0.0, "arrive", 0),
                TraceEvent(10.0, "depart", 7),
                TraceEvent(100.0, "depart", 0),
            ]
        )
        report = run_service(trace, pods4, ServiceConfig(horizon_s=10.0))
        assert report.requests == 1
        assert report.cancelled == 0


class TestScalingDriver:
    def test_scale_events_drive_outs_and_ins(self, pods4):
        report = run_service(
            storm(), pods4, ServiceConfig(horizon_s=30.0, scaling=scaling())
        )
        assert report.scale_evaluations > 0
        assert report.scale_outs > 0
        assert report.scale_ins > 0
        assert report.vms_added >= report.scale_outs
        assert report.vms_removed >= report.scale_ins
        assert report.audit_violations == []

    def test_same_seed_scaled_runs_are_byte_identical(self, pods4):
        config = ServiceConfig(horizon_s=30.0, scaling=scaling())
        a = run_service(storm(), pods4, config)
        b = run_service(storm(), pods4, config)
        assert a.fingerprint == b.fingerprint
        assert a.scale_outs == b.scale_outs
        assert a.scale_ins == b.scale_ins

    def test_scaling_disabled_matches_no_scaling_config(self, pods4):
        """Scale events with scaling off are skipped entirely: the run
        must be bit-identical to one with no scaling configured."""
        baseline = run_service(
            storm(), pods4, ServiceConfig(horizon_s=30.0)
        )
        disabled = run_service(
            storm(),
            pods4,
            ServiceConfig(
                horizon_s=30.0, scaling=scaling(enabled=False)
            ),
        )
        assert disabled.fingerprint == baseline.fingerprint
        assert disabled.scale_evaluations == 0
        assert disabled.scale_outs == 0

    def test_scaled_run_differs_from_baseline(self, pods4):
        baseline = run_service(
            storm(), pods4, ServiceConfig(horizon_s=30.0)
        )
        scaled = run_service(
            storm(), pods4, ServiceConfig(horizon_s=30.0, scaling=scaling())
        )
        assert scaled.fingerprint != baseline.fingerprint

    def test_consolidating_scale_in_stays_leak_free(self, pods4):
        report = run_service(
            storm(),
            pods4,
            ServiceConfig(
                horizon_s=30.0, scaling=scaling(consolidate=True)
            ),
        )
        assert report.scale_ins > 0
        assert report.audit_violations == []

    def test_ewma_policy_runs_clean(self, pods4):
        report = run_service(
            storm(),
            pods4,
            ServiceConfig(
                horizon_s=30.0, scaling=scaling(policy="ewma")
            ),
        )
        assert report.scale_evaluations > 0
        assert report.audit_violations == []