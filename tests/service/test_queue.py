"""Admission queue tests: ordering, deadlines, cancellation."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.topology import ApplicationTopology
from repro.errors import ReproError
from repro.service.queue import AdmissionQueue, request_sort_key


def app(name: str) -> ApplicationTopology:
    topo = ApplicationTopology(name)
    topo.add_vm("vm0", 1, 1)
    return topo


class TestOrdering:
    def test_drain_orders_by_priority_time_id(self):
        queue = AdmissionQueue()
        queue.submit(app("late-urgent"), 30.0, priority=0)
        queue.submit(app("early-lazy"), 10.0, priority=1)
        queue.submit(app("early-urgent"), 10.0, priority=0)
        ready, expired = queue.drain(60.0)
        assert expired == []
        assert [r.app_name for r in ready] == [
            "early-urgent",
            "late-urgent",
            "early-lazy",
        ]

    def test_ties_break_on_request_id(self):
        queue = AdmissionQueue()
        first = queue.submit(app("a"), 5.0)
        second = queue.submit(app("b"), 5.0)
        assert first.request_id < second.request_id
        ready, _ = queue.drain(10.0)
        assert [r.request_id for r in ready] == [
            first.request_id,
            second.request_id,
        ]

    def test_sort_key_is_total(self):
        queue = AdmissionQueue()
        requests = [
            queue.submit(app(f"t{i}"), float(i % 3), priority=i % 2)
            for i in range(12)
        ]
        keys = sorted(request_sort_key(r) for r in requests)
        assert len(set(keys)) == len(keys)  # no two requests compare equal

    def test_future_submissions_stay_queued(self):
        queue = AdmissionQueue()
        queue.submit(app("now"), 10.0)
        queue.submit(app("later"), 90.0)
        ready, _ = queue.drain(30.0)
        assert [r.app_name for r in ready] == ["now"]
        assert len(queue) == 1
        ready, _ = queue.drain(90.0)
        assert [r.app_name for r in ready] == ["later"]
        assert len(queue) == 0


class TestDeadlines:
    def test_expired_requests_separated(self):
        queue = AdmissionQueue()
        queue.submit(app("patient"), 0.0, deadline_s=1000.0)
        queue.submit(app("hasty"), 0.0, deadline_s=10.0)
        ready, expired = queue.drain(30.0)
        assert [r.app_name for r in ready] == ["patient"]
        assert [r.app_name for r in expired] == ["hasty"]

    def test_deadline_boundary_is_inclusive(self):
        queue = AdmissionQueue()
        request = queue.submit(app("edge"), 0.0, deadline_s=30.0)
        assert not request.expired(30.0)  # exactly at the deadline: alive
        assert request.expired(30.0 + 1e-9)

    def test_no_deadline_never_expires(self):
        queue = AdmissionQueue()
        request = queue.submit(app("forever"), 0.0)
        assert not request.expired(1e12)


class TestCancel:
    def test_cancel_removes_pending(self):
        queue = AdmissionQueue()
        request = queue.submit(app("gone"), 0.0)
        cancelled = queue.cancel(request.request_id)
        assert cancelled.app_name == "gone"
        assert len(queue) == 0

    def test_cancel_unknown_raises(self):
        queue = AdmissionQueue()
        with pytest.raises(ReproError):
            queue.cancel(7)

    def test_cancel_after_drain_raises(self):
        queue = AdmissionQueue()
        request = queue.submit(app("drained"), 0.0)
        queue.drain(1.0)
        with pytest.raises(ReproError):
            queue.cancel(request.request_id)


class TestTelemetry:
    def test_queue_events_and_depth_gauge(self):
        rec = obs.enable()
        try:
            queue = AdmissionQueue()
            queue.submit(app("a"), 0.0)
            victim = queue.submit(app("b"), 100.0)
            queue.cancel(victim.request_id)
            queue.submit(app("c"), 50.0)
            queue.drain(10.0)
            assert rec.events.count("request_enqueued") == 3
            assert rec.events.count("request_cancelled") == 1
            depth = rec.registry.get("ostro_service_queue_depth").value()
            assert depth == 1.0  # only "c" (submitted at 50) still waits
        finally:
            obs.disable()
