"""Service driver tests: storms, fingerprints, churn, report math."""

from __future__ import annotations

import pytest

from repro.datacenter.builder import build_cloud
from repro.service import ServiceConfig, run_service
from repro.sim.arrivals import (
    WorkloadTrace,
    default_app_factory,
    event_sort_key,
    replay,
)


@pytest.fixture(scope="module")
def pods4():
    return build_cloud(
        num_datacenters=1, pods_per_dc=4, racks_per_pod=2, hosts_per_rack=4
    )


def storm(arrivals=40, **kwargs):
    defaults = dict(
        mean_interarrival_s=15.0,
        mean_lifetime_s=300.0,
        seed=11,
        burst_every_s=200.0,
        burst_len_s=40.0,
        burst_factor=4.0,
        priority_levels=3,
        update_fraction=0.25,
    )
    defaults.update(kwargs)
    return WorkloadTrace.poisson_storm(
        arrivals, default_app_factory, **defaults
    )


class TestStormTrace:
    def test_storm_is_deterministic(self):
        assert storm().events == storm().events

    def test_events_are_sorted(self):
        events = storm().events
        keys = [event_sort_key(e) for e in events]
        assert keys == sorted(keys)

    def test_updates_scheduled_mid_lifetime(self):
        trace = storm(update_fraction=1.0)
        spans = {}
        for event in trace.events:
            spans.setdefault(event.app_id, {})[event.kind] = event.time
        updates = 0
        for times in spans.values():
            if "update" in times:
                updates += 1
                assert times["arrive"] < times["update"] < times["depart"]
        assert updates == len(spans)

    def test_priorities_drawn_per_app(self):
        trace = storm(arrivals=60, priority_levels=3)
        assert set(trace.priorities.values()) == {0, 1, 2}

    def test_plain_replay_ignores_update_events(self, pods4):
        trace = storm(arrivals=15, update_fraction=1.0)
        report = replay(trace, pods4, algorithm="eg")
        assert report.arrivals == 15  # update events neither admit nor remove
        assert report.accepted + report.rejected == 15


class TestSerialEquivalence:
    def test_batched_reproduces_serial_fingerprint(self, pods4):
        trace = storm()
        config = ServiceConfig(horizon_s=30.0, max_batch=8, deadline_s=120.0)
        serial = run_service(trace, pods4, config, serial=True)
        batched = run_service(trace, pods4, config)
        assert serial.fingerprint == batched.fingerprint
        assert serial.admitted == batched.admitted
        assert serial.audit_violations == []
        assert batched.audit_violations == []
        # batching actually batched (otherwise the gate is vacuous)
        assert batched.batches["joint"] > 0
        assert serial.batches["joint"] == 0

    def test_fingerprint_stable_across_runs(self, pods4):
        trace = storm(arrivals=25)
        config = ServiceConfig(horizon_s=30.0, max_batch=8)
        assert (
            run_service(trace, pods4, config).fingerprint
            == run_service(trace, pods4, config).fingerprint
        )

    def test_different_workloads_differ(self, pods4):
        config = ServiceConfig(horizon_s=30.0, max_batch=8)
        a = run_service(storm(arrivals=20, seed=1), pods4, config)
        b = run_service(storm(arrivals=20, seed=2), pods4, config)
        assert a.fingerprint != b.fingerprint


class TestLifecycle:
    def test_decisions_partition_requests(self, pods4):
        report = run_service(
            storm(arrivals=50, mean_lifetime_s=120.0),
            pods4,
            ServiceConfig(horizon_s=30.0, deadline_s=90.0),
        )
        assert report.requests == 50
        assert (
            report.admitted
            + report.rejected
            + report.expired
            + report.cancelled
            == report.requests
        )
        assert len(report.outcomes) == report.requests

    def test_short_lifetimes_cancel_queued_requests(self, pods4):
        # lifetimes much shorter than the horizon: many tenants depart
        # before their admission boundary ever arrives
        report = run_service(
            storm(arrivals=40, mean_lifetime_s=10.0, update_fraction=0.0),
            pods4,
            ServiceConfig(horizon_s=60.0),
        )
        assert report.cancelled > 0

    def test_tight_deadlines_expire(self, pods4):
        report = run_service(
            storm(arrivals=30, mean_lifetime_s=5000.0, update_fraction=0.0),
            pods4,
            ServiceConfig(horizon_s=120.0, deadline_s=1.0),
        )
        assert report.expired > 0
        assert report.expired + report.admitted + report.cancelled == 30

    def test_updates_flow_through_online_adaptation(self, pods4):
        report = run_service(
            storm(arrivals=30, mean_lifetime_s=600.0, update_fraction=1.0),
            pods4,
            ServiceConfig(horizon_s=30.0),
        )
        assert report.updates_applied > 0
        assert report.audit_violations == []

    def test_shard_admissions_sum_to_admitted(self, pods4):
        report = run_service(storm(), pods4, ServiceConfig())
        assert sum(report.shard_admissions.values()) == report.admitted

    def test_latency_percentiles_ordered(self, pods4):
        report = run_service(storm(), pods4, ServiceConfig())
        assert (
            0.0
            <= report.latency_p50_s
            <= report.latency_p95_s
            <= report.latency_p99_s
        )
        assert report.placements_per_sec > 0
