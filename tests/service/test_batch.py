"""Batch admission engine tests: grouping, joint placement, fallback."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.topology import ApplicationTopology
from repro.service.batch import BatchAdmissionEngine, BatchPolicy
from repro.service.coordinator import ShardedCoordinator
from repro.service.queue import AdmissionQueue


def tiny(name: str, vcpus: int = 2) -> ApplicationTopology:
    topo = ApplicationTopology(name)
    topo.add_vm("vm0", vcpus, 2)
    topo.add_vm("vm1", vcpus, 2)
    topo.connect("vm0", "vm1", 100)
    return topo


def submit_all(queue: AdmissionQueue, topologies, t: float = 0.0):
    for topo in topologies:
        queue.submit(topo, t)
    ready, _ = queue.drain(t + 1.0)
    return ready


class TestGrouping:
    def make_engine(self, podded_cloud, max_batch=16):
        coordinator = ShardedCoordinator(podded_cloud)
        return BatchAdmissionEngine(
            coordinator, BatchPolicy(max_batch=max_batch)
        )

    def test_splits_at_max_batch(self, podded_cloud):
        engine = self.make_engine(podded_cloud, max_batch=2)
        queue = AdmissionQueue()
        ready = submit_all(queue, [tiny(f"a{i}") for i in range(5)])
        groups = engine.group(ready)
        assert [len(g) for g in groups] == [2, 2, 1]

    def test_splits_on_duplicate_app_name(self, podded_cloud):
        engine = self.make_engine(podded_cloud)
        queue = AdmissionQueue()
        ready = submit_all(
            queue, [tiny("a"), tiny("b"), tiny("a"), tiny("c")]
        )
        groups = engine.group(ready)
        assert [[r.app_name for r in g] for g in groups] == [
            ["a", "b"],
            ["a", "c"],
        ]

    def test_preserves_drain_order(self, podded_cloud):
        engine = self.make_engine(podded_cloud, max_batch=3)
        queue = AdmissionQueue()
        ready = submit_all(queue, [tiny(f"t{i}") for i in range(7)])
        flat = [r.app_name for g in engine.group(ready) for r in g]
        assert flat == [r.app_name for r in ready]


class TestJointAdmission:
    def test_feasible_batch_admits_jointly(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        engine = BatchAdmissionEngine(coordinator, BatchPolicy(max_batch=8))
        queue = AdmissionQueue()
        ready = submit_all(queue, [tiny(f"j{i}") for i in range(4)])
        outcomes = engine.admit_batch(ready, now=30.0)
        assert [o.status for o in outcomes] == ["admitted"] * 4
        assert {o.mode for o in outcomes} == {"joint"}
        assert engine.joint_batches == 1
        assert engine.fallback_batches == 0
        assert coordinator.verify_state() == []

    def test_latency_measured_from_submission(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        engine = BatchAdmissionEngine(coordinator, BatchPolicy())
        queue = AdmissionQueue()
        queue.submit(tiny("early"), 5.0)
        queue.submit(tiny("late"), 25.0)
        ready, _ = queue.drain(30.0)
        outcomes = engine.admit_batch(ready, now=30.0)
        by_name = {o.request.app_name: o for o in outcomes}
        assert by_name["early"].latency_s == 25.0
        assert by_name["late"].latency_s == 5.0

    def test_single_request_batch_mode(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        engine = BatchAdmissionEngine(coordinator, BatchPolicy(max_batch=1))
        queue = AdmissionQueue()
        ready = submit_all(queue, [tiny("solo"), tiny("duo")])
        outcomes = engine.admit_batch(ready, now=1.0)
        assert {o.mode for o in outcomes} == {"single"}
        assert engine.batches == 2


class TestUnexpectedErrorRollback:
    def test_crash_mid_batch_rolls_back_admitted_members(
        self, podded_cloud, monkeypatch
    ):
        """A non-verdict exception (not Placement/DeadlineError) must
        undo the members already placed before it propagates."""
        coordinator = ShardedCoordinator(podded_cloud)
        engine = BatchAdmissionEngine(
            coordinator, BatchPolicy(max_batch=8)
        )
        queue = AdmissionQueue()
        ready = submit_all(queue, [tiny(f"u{i}") for i in range(3)])
        before = coordinator.state.snapshot()
        real = coordinator.admit
        calls = {"n": 0}

        def flaky(topology, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("shard crashed")
            return real(topology, **kwargs)

        monkeypatch.setattr(coordinator, "admit", flaky)
        with pytest.raises(RuntimeError):
            engine.admit_batch(ready, now=1.0)
        assert coordinator.state.snapshot() == before
        assert coordinator.verify_state() == []


class TestFallback:
    def test_one_bad_request_cannot_reject_its_cohort(self, podded_cloud):
        coordinator = ShardedCoordinator(podded_cloud)
        engine = BatchAdmissionEngine(coordinator, BatchPolicy(max_batch=8))
        queue = AdmissionQueue()
        monster = ApplicationTopology("monster")
        monster.add_vm("vm0", 1000, 1000)
        ready = submit_all(
            queue, [tiny("good1"), monster, tiny("good2")]
        )
        before = coordinator.state.snapshot()
        outcomes = engine.admit_batch(ready, now=1.0)
        by_name = {o.request.app_name: o for o in outcomes}
        assert by_name["good1"].status == "admitted"
        assert by_name["good2"].status == "admitted"
        assert by_name["monster"].status == "rejected"
        assert {o.mode for o in outcomes} == {"fallback"}
        assert engine.fallback_batches == 1
        # capacity conserved: only the two good tenants' reservations differ
        assert coordinator.verify_state() == []
        coordinator.remove("good1")
        coordinator.remove("good2")
        assert coordinator.state.snapshot() == before

    def test_fallback_matches_serial_decisions(self, podded_cloud):
        """The fallback replay must reach exactly the placements a
        max_batch=1 engine reaches on the same drain."""
        monster = ApplicationTopology("monster")
        monster.add_vm("vm0", 1000, 1000)
        topos = [tiny("a"), monster, tiny("b"), tiny("c")]

        def run(max_batch):
            coordinator = ShardedCoordinator(podded_cloud)
            engine = BatchAdmissionEngine(
                coordinator, BatchPolicy(max_batch=max_batch)
            )
            queue = AdmissionQueue()
            ready = submit_all(queue, [t.copy() for t in topos])
            engine.admit_batch(ready, now=1.0)
            return {
                name: {
                    n: (a.host, a.disk)
                    for n, a in app.placement.assignments.items()
                }
                for name, app in coordinator.ostro.applications.items()
            }

        assert run(8) == run(1)


class TestTelemetry:
    def test_batch_metrics_and_events(self, podded_cloud):
        rec = obs.enable()
        try:
            coordinator = ShardedCoordinator(podded_cloud)
            engine = BatchAdmissionEngine(
                coordinator, BatchPolicy(max_batch=8)
            )
            queue = AdmissionQueue()
            monster = ApplicationTopology("monster")
            monster.add_vm("vm0", 1000, 1000)
            ready = submit_all(queue, [tiny("x"), tiny("y")])
            engine.admit_batch(ready, now=1.0)
            ready = submit_all(queue, [tiny("z"), monster], t=2.0)
            engine.admit_batch(ready, now=3.0)
            registry = rec.registry
            requests = registry.get("ostro_service_requests_total")
            assert requests.value(outcome="admitted") == 3
            assert requests.value(outcome="rejected") == 1
            batches = registry.get("ostro_service_batches_total")
            assert batches.value(mode="joint") == 1
            assert batches.value(mode="fallback") == 1
            assert rec.events.count("batch_fallback") == 1
            (fallback,) = rec.events.of_type("batch_fallback")
            assert fallback.fields["failed_app"] == "monster"
            latency = registry.get(
                "ostro_service_admission_latency_seconds"
            )
            assert latency.count() == 3
        finally:
            obs.disable()
