"""Pod shard tests: partitioning, masking, screening, scratch audit."""

from __future__ import annotations

import pytest

from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from repro.service.shard import build_shards
from tests.conftest import make_three_tier


class TestBuildShards:
    def test_podded_cloud_one_shard_per_pod(self, podded_cloud):
        shards = build_shards(podded_cloud)
        assert len(shards) == len(podded_cloud.pods) == 4
        covered = sorted(h for s in shards for h in s.hosts)
        assert covered == list(range(podded_cloud.num_hosts))
        assert [s.shard_id for s in shards] == [0, 1, 2, 3]

    def test_podless_dc_one_shard_per_rack(self, small_dc):
        shards = build_shards(small_dc)
        assert len(shards) == 4  # 4 implicit pods = 4 racks
        for shard in shards:
            assert len(shard.hosts) == 4
            assert len(shard.racks) == 1

    def test_partition_is_disjoint(self, podded_cloud):
        shards = build_shards(podded_cloud)
        seen: set = set()
        for shard in shards:
            assert not seen & set(shard.hosts)
            seen.update(shard.hosts)


class TestMasking:
    def test_masked_snapshot_zeroes_foreign_capacity(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shards = build_shards(podded_cloud)
        shard = shards[0]
        masked = shard.masked_snapshot(state.snapshot())
        cpu, mem, disk, bw, units = masked
        for h in range(podded_cloud.num_hosts):
            if shard.owns_host(h):
                assert cpu[h] == state.free_cpu[h]
                assert mem[h] == state.free_mem[h]
            else:
                assert cpu[h] == 0.0
                assert mem[h] == 0.0
        # bandwidth and unit counts keep their global values
        assert bw == tuple(state.free_bw)
        assert units == tuple(float(u) for u in state.host_units)

    def test_search_confined_to_shard(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shards = build_shards(podded_cloud)
        for shard in shards[:2]:
            result = shard.search(
                state.snapshot(), make_three_tier(), algorithm="eg"
            )
            for assignment in result.placement.assignments.values():
                assert shard.owns_host(assignment.host)

    def test_search_leaves_scratch_state_clean(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shard = build_shards(podded_cloud)[0]
        shard.search(state.snapshot(), make_three_tier(), algorithm="eg")
        assert shard.scratch_violations() == []

    def test_search_sees_global_occupancy(self, podded_cloud):
        """Capacity used by other tenants (committed globally) must be
        invisible to the shard as free space."""
        state = DataCenterState(podded_cloud)
        ostro = Ostro(podded_cloud, state=state)
        shard = build_shards(podded_cloud)[0]
        # fill the shard's hosts almost completely through the global state
        for h in shard.hosts:
            state.place_vm(h, state.free_cpu[h] - 1, state.free_mem[h] - 1)
        ostro.rebaseline()
        big = ApplicationTopology("big")
        big.add_vm("vm0", 4, 4)
        with pytest.raises(PlacementError):
            shard.search(state.snapshot(), big, algorithm="eg")


class TestScreen:
    def test_pod_zone_is_screened_out(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shard = build_shards(podded_cloud)[0]
        topo = ApplicationTopology("spread")
        topo.add_vm("a", 1, 1)
        topo.add_vm("b", 1, 1)
        topo.add_zone("wide", Level.POD, ["a", "b"])
        assert shard.screen(topo, state) == "needs_pod_separation"

    def test_rack_zone_wider_than_shard(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shard = build_shards(podded_cloud)[0]  # 2 racks per pod
        topo = ApplicationTopology("racky")
        for i in range(3):
            topo.add_vm(f"v{i}", 1, 1)
        topo.add_zone("z", Level.RACK, ["v0", "v1", "v2"])
        assert shard.screen(topo, state) == "insufficient_racks"

    def test_host_zone_wider_than_shard(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shard = build_shards(podded_cloud)[0]  # 4 hosts
        topo = ApplicationTopology("hosty")
        for i in range(5):
            topo.add_vm(f"v{i}", 1, 1)
        topo.add_zone("z", Level.HOST, [f"v{i}" for i in range(5)])
        assert shard.screen(topo, state) == "insufficient_hosts"

    def test_aggregate_capacity_screen(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shard = build_shards(podded_cloud)[0]
        hog = ApplicationTopology("hog")
        total_cpu = sum(state.free_cpu[h] for h in shard.hosts)
        for i in range(8):
            hog.add_vm(f"v{i}", total_cpu / 4, 1)
        assert shard.screen(hog, state) == "insufficient_capacity"

    def test_widest_vm_screen(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shard = build_shards(podded_cloud)[0]
        tall = ApplicationTopology("tall")
        widest = max(state.free_cpu[h] for h in shard.hosts)
        tall.add_vm("v0", widest + 1, 1)
        assert shard.screen(tall, state) == "largest_vm_does_not_fit"

    def test_disk_screens(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shard = build_shards(podded_cloud)[0]
        total_disk = sum(state.free_disk[d] for d in shard.disks)
        fat = ApplicationTopology("fat")
        fat.add_vm("v0", 1, 1)
        fat.add_volume("vol0", total_disk / 2 + 1)
        fat.add_volume("vol1", total_disk / 2 + 1)
        assert shard.screen(fat, state) == "insufficient_disk"
        chunky = ApplicationTopology("chunky")
        chunky.add_vm("v0", 1, 1)
        biggest = max(state.free_disk[d] for d in shard.disks)
        chunky.add_volume("vol", biggest + 1)
        assert shard.screen(chunky, state) == "largest_volume_does_not_fit"

    def test_feasible_topology_passes(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shard = build_shards(podded_cloud)[0]
        assert shard.screen(make_three_tier(), state) is None


class TestLoad:
    def test_load_reflects_global_occupancy(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        shards = build_shards(podded_cloud)
        assert shards[0].load(state) == pytest.approx(0.0)
        h = shards[0].hosts[0]
        state.place_vm(h, state.free_cpu[h], 1.0)
        assert shards[0].load(state) == pytest.approx(
            podded_cloud.hosts[h].cpu_cores / shards[0].nominal_cpu
        )
        assert shards[1].load(state) == pytest.approx(0.0)
