"""Property-based tests (hypothesis) over the core invariants.

These tests generate random topologies, loads, and operation sequences and
check the invariants the whole system rests on: placements always satisfy
every constraint, reservations round-trip exactly, normalization stays in
bounds, the exact optimizations (candidate dedup, symmetry reduction)
never change results, and BA* never does worse than EG.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.astar import BAStar
from repro.core.greedy import EG, GreedyConfig
from repro.core.objective import Objective
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_cloud, build_datacenter
from repro.datacenter.loadgen import apply_random_load
from repro.datacenter.model import Level
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from repro.heat.template import template_from_topology, topology_from_template
from tests.core.test_greedy import verify_placement_feasible

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def snapshots_close(a, b, tol=1e-9) -> bool:
    """Element-wise approximate snapshot equality (float ulp drift)."""
    return all(
        len(va) == len(vb) and all(abs(x - y) <= tol for x, y in zip(va, vb))
        for va, vb in zip(a, b)
    )

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def topologies(draw, max_vms: int = 6, max_volumes: int = 3):
    """Random small application topologies."""
    topo = ApplicationTopology("random")
    n_vms = draw(st.integers(min_value=1, max_value=max_vms))
    n_vols = draw(st.integers(min_value=0, max_value=max_volumes))
    for i in range(n_vms):
        topo.add_vm(
            f"vm{i}",
            vcpus=draw(st.sampled_from([1, 2, 4])),
            mem_gb=draw(st.sampled_from([1, 2, 4, 8])),
        )
    for i in range(n_vols):
        topo.add_volume(f"vol{i}", size_gb=draw(st.sampled_from([10, 50, 120])))
    vm_names = [f"vm{i}" for i in range(n_vms)]
    vol_names = [f"vol{i}" for i in range(n_vols)]
    # links: VM-VM pairs and VM-volume pairs
    for i in range(n_vms):
        for j in range(i + 1, n_vms):
            if draw(st.booleans()):
                topo.connect(
                    vm_names[i],
                    vm_names[j],
                    draw(st.sampled_from([10, 50, 100])),
                )
    for k, vol in enumerate(vol_names):
        owner = vm_names[k % n_vms]
        topo.connect(owner, vol, draw(st.sampled_from([10, 100, 200])))
    # zones over VMs
    if n_vms >= 2 and draw(st.booleans()):
        members = draw(
            st.lists(
                st.sampled_from(vm_names), min_size=2, max_size=n_vms, unique=True
            )
        )
        level = draw(st.sampled_from([Level.HOST, Level.RACK]))
        topo.add_zone("z0", level, members)
    return topo


def small_cloud():
    return build_datacenter(num_racks=3, hosts_per_rack=3)


# ---------------------------------------------------------------------------
# placement feasibility
# ---------------------------------------------------------------------------


class TestPlacementsAlwaysFeasible:
    @SETTINGS
    @given(topo=topologies(), seed=st.integers(0, 50), algo_i=st.integers(0, 2))
    def test_any_algorithm_output_is_feasible(self, topo, seed, algo_i):
        from repro.core.greedy import EGBW, EGC

        cloud = small_cloud()
        state = DataCenterState(cloud)
        apply_random_load(state, fraction_hosts=0.4, seed=seed)
        algorithm = [EG(), EGC(), EGBW()][algo_i]
        try:
            result = algorithm.place(topo, cloud, state)
        except PlacementError:
            return  # infeasible inputs are allowed to fail loudly
        verify_placement_feasible(topo, cloud, state, result.placement)

    @SETTINGS
    @given(topo=topologies(max_vms=4, max_volumes=2), seed=st.integers(0, 20))
    def test_bastar_output_is_feasible(self, topo, seed):
        cloud = small_cloud()
        state = DataCenterState(cloud)
        apply_random_load(state, fraction_hosts=0.3, seed=seed)
        try:
            result = BAStar(max_expansions=300).place(topo, cloud, state)
        except PlacementError:
            return
        verify_placement_feasible(topo, cloud, state, result.placement)


class TestSearchDominance:
    @SETTINGS
    @given(topo=topologies(max_vms=4, max_volumes=1), seed=st.integers(0, 20))
    def test_bastar_never_worse_than_eg(self, topo, seed):
        cloud = small_cloud()
        state = DataCenterState(cloud)
        apply_random_load(state, fraction_hosts=0.3, seed=seed)
        objective = Objective.for_topology(topo, cloud)
        try:
            eg_value = EG().place(topo, cloud, state, objective).objective_value
        except PlacementError:
            return
        ba_value = (
            BAStar(max_expansions=300)
            .place(topo, cloud, state, objective)
            .objective_value
        )
        assert ba_value <= eg_value + 1e-9

    @SETTINGS
    @given(topo=topologies(max_vms=5, max_volumes=2), seed=st.integers(0, 20))
    def test_dedup_never_changes_eg_result(self, topo, seed):
        cloud = small_cloud()
        state = DataCenterState(cloud)
        apply_random_load(state, fraction_hosts=0.4, seed=seed)
        results = []
        for dedup in (True, False):
            try:
                results.append(
                    EG(GreedyConfig(dedup=dedup)).place(topo, cloud, state)
                )
            except PlacementError:
                results.append(None)
        if results[0] is None or results[1] is None:
            assert results[0] is None and results[1] is None
            return
        assert results[0].objective_value == pytest.approx(
            results[1].objective_value, abs=1e-9
        )


# ---------------------------------------------------------------------------
# state round-trips
# ---------------------------------------------------------------------------


class TestStateRoundTrips:
    @SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 8),  # host
                st.floats(0.5, 4),  # cpu
                st.floats(0.5, 4),  # mem
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_vm_reservations_roundtrip(self, ops):
        cloud = small_cloud()
        state = DataCenterState(cloud)
        before = state.snapshot()
        applied = []
        for host, cpu, mem in ops:
            if state.vm_fits(host, cpu, mem):
                state.place_vm(host, cpu, mem)
                applied.append((host, cpu, mem))
        for host, cpu, mem in reversed(applied):
            state.unplace_vm(host, cpu, mem)
        assert snapshots_close(state.snapshot(), before)

    @SETTINGS
    @given(
        topo=topologies(max_vms=4, max_volumes=2),
        order_seed=st.integers(0, 100),
    )
    def test_partial_placement_roundtrip(self, topo, order_seed):
        import random

        cloud = small_cloud()
        state = DataCenterState(cloud)
        partial = PartialPlacement(topo, state, PathResolver(cloud))
        before = partial.state.snapshot()
        rng = random.Random(order_seed)
        placed = []
        for name in topo.nodes:
            host = rng.randrange(cloud.num_hosts)
            node = topo.node(name)
            disk = (
                cloud.hosts[host].disks[0].index if not node.is_vm else None
            )
            try:
                partial.assign(name, host, disk)
                placed.append(name)
            except PlacementError:
                pass
        rng.shuffle(placed)
        for name in placed:
            partial.unassign(name)
        assert snapshots_close(partial.state.snapshot(), before)
        assert partial.ubw == pytest.approx(0.0)
        assert partial.uc == 0


# ---------------------------------------------------------------------------
# objective and structure
# ---------------------------------------------------------------------------


class TestObjectiveProperties:
    @SETTINGS
    @given(
        topo=topologies(),
        bw_frac=st.floats(0, 1),
        uc_frac=st.floats(0, 1),
    )
    def test_score_in_unit_interval_within_worst_case(
        self, topo, bw_frac, uc_frac
    ):
        cloud = small_cloud()
        objective = Objective.for_topology(topo, cloud)
        score = objective.score(
            bw_frac * objective.ubw_hat, uc_frac * objective.uc_hat
        )
        assert -1e-9 <= score <= 1.0 + 1e-9

    @SETTINGS
    @given(topo=topologies(), seed=st.integers(0, 20))
    def test_placement_usage_below_worst_case(self, topo, seed):
        cloud = small_cloud()
        state = DataCenterState(cloud)
        objective = Objective.for_topology(topo, cloud)
        try:
            result = EG().place(topo, cloud, state, objective)
        except PlacementError:
            return
        assert result.reserved_bw_mbps <= objective.ubw_hat + 1e-9
        assert result.new_active_hosts <= objective.uc_hat + 1e-9


class TestCloudStructure:
    @SETTINGS
    @given(
        a=st.integers(0, 15),
        b=st.integers(0, 15),
    )
    def test_path_and_distance_consistency(self, a, b):
        cloud = build_cloud(
            num_datacenters=2, pods_per_dc=2, racks_per_pod=2, hosts_per_rack=2
        )
        dist = cloud.distance(a, b)
        path = cloud.path(a, b)
        assert cloud.distance(b, a) == dist
        assert len(path) % 2 == 0
        if dist == 0:
            assert path == ()
        else:
            assert len(path) >= 2
        # hop count grows with distance
        if dist > 0:
            assert len(path) == cloud.hop_count(a, b)


class TestTemplateRoundTrip:
    @SETTINGS
    @given(topo=topologies())
    def test_topology_survives_template_roundtrip(self, topo):
        template = template_from_topology(topo)
        back = topology_from_template(template)
        assert set(back.nodes) == set(topo.nodes)
        for name in topo.nodes:
            assert back.node(name) == topo.node(name)
        assert sorted(
            (min(l.a, l.b), max(l.a, l.b), l.bw_mbps) for l in back.links
        ) == sorted(
            (min(l.a, l.b), max(l.a, l.b), l.bw_mbps) for l in topo.links
        )
        assert {(z.name, z.level, z.members) for z in back.zones} == {
            (z.name, z.level, z.members) for z in topo.zones
        }
