"""Tests for the background-load generators (Table IV / testbed preload)."""

from __future__ import annotations

from repro.datacenter.builder import build_datacenter, build_testbed
from repro.datacenter.loadgen import (
    apply_random_load,
    apply_table_iv_load,
    apply_testbed_load,
)
from repro.datacenter.state import DataCenterState


class TestTestbedLoad:
    def test_group_availability_matches_paper(self):
        state = DataCenterState(build_testbed())
        apply_testbed_load(state, seed=1)
        # lightly utilized: 8 or 10 free cores, > 20 GB free
        for h in range(0, 4):
            assert state.free_cpu[h] in (8, 10)
            assert state.free_mem[h] > 20
        # medium: 5-6 free cores, 15-19 GB
        for h in range(4, 8):
            assert 5 <= state.free_cpu[h] <= 6
            assert 15 <= state.free_mem[h] <= 19
        # constrained: < 5 cores, < 15 GB
        for h in range(8, 12):
            assert state.free_cpu[h] < 5
            assert state.free_mem[h] < 15
        # idle
        for h in range(12, 16):
            assert state.free_cpu[h] == 16
            assert state.free_mem[h] == 32
            assert not state.host_is_active(h)

    def test_loaded_hosts_are_active(self):
        state = DataCenterState(build_testbed())
        apply_testbed_load(state)
        assert state.active_host_indices() == list(range(12))

    def test_deterministic_per_seed(self):
        a = DataCenterState(build_testbed())
        b = DataCenterState(build_testbed())
        apply_testbed_load(a, seed=7)
        apply_testbed_load(b, seed=7)
        assert a.snapshot() == b.snapshot()


class TestTableIVLoad:
    def test_quarters_per_rack(self):
        cloud = build_datacenter(num_racks=3, hosts_per_rack=16)
        state = DataCenterState(cloud)
        apply_table_iv_load(state, seed=3)
        for rack in cloud.racks:
            hosts = [h.index for h in rack.hosts]
            # first quarter: 9-16 free cores
            for h in hosts[0:4]:
                assert 9 <= state.free_cpu[h] <= 16
            # second quarter: 6-8 free cores
            for h in hosts[4:8]:
                assert 6 <= state.free_cpu[h] <= 8
            # third quarter: 0-5 free cores
            for h in hosts[8:12]:
                assert state.free_cpu[h] <= 5
            # final quarter idle
            for h in hosts[12:16]:
                assert state.free_cpu[h] == 16
                assert not state.host_is_active(h)

    def test_bandwidth_classes(self):
        cloud = build_datacenter(num_racks=1, hosts_per_rack=16)
        state = DataCenterState(cloud)
        apply_table_iv_load(state, seed=5)
        hosts = [h.index for h in cloud.racks[0].hosts]
        for h in hosts[0:4]:
            nic = cloud.hosts[h].link_index
            assert state.free_bw[nic] <= 1500
        for h in hosts[12:16]:
            nic = cloud.hosts[h].link_index
            assert state.free_bw[nic] == 10_000


class TestRandomLoad:
    def test_respects_fraction(self):
        cloud = build_datacenter(num_racks=2, hosts_per_rack=8)
        state = DataCenterState(cloud)
        loaded = apply_random_load(state, fraction_hosts=0.5, seed=2)
        assert len(loaded) == 8
        for h in loaded:
            assert state.host_is_active(h)

    def test_deterministic_per_seed(self):
        cloud = build_datacenter(num_racks=2, hosts_per_rack=8)
        a, b = DataCenterState(cloud), DataCenterState(cloud)
        assert apply_random_load(a, seed=9) == apply_random_load(b, seed=9)
        assert a.snapshot() == b.snapshot()
