"""Tests for the mutable availability state."""

from __future__ import annotations

import pytest

from repro.datacenter.state import DataCenterState
from repro.errors import CapacityError


@pytest.fixture
def state(small_dc):
    return DataCenterState(small_dc)


class TestInitialState:
    def test_starts_fully_free(self, state, small_dc):
        assert state.free_cpu == [h.cpu_cores for h in small_dc.hosts]
        assert state.free_mem == [h.mem_gb for h in small_dc.hosts]
        assert state.free_bw == list(small_dc.link_capacity_mbps)
        assert not any(state.host_units)

    def test_no_active_hosts_initially(self, state):
        assert state.active_host_indices() == []


class TestVMPlacement:
    def test_place_and_unplace_roundtrip(self, state):
        before = state.snapshot()
        state.place_vm(0, 4, 8)
        assert state.free_cpu[0] == 12
        assert state.free_mem[0] == 24
        assert state.host_is_active(0)
        state.unplace_vm(0, 4, 8)
        assert state.snapshot() == before

    def test_overcommit_cpu_rejected(self, state):
        with pytest.raises(CapacityError):
            state.place_vm(0, 17, 1)

    def test_overcommit_mem_rejected(self, state):
        with pytest.raises(CapacityError):
            state.place_vm(0, 1, 33)

    def test_failed_placement_leaves_state_unchanged(self, state):
        before = state.snapshot()
        with pytest.raises(CapacityError):
            state.place_vm(0, 99, 99)
        assert state.snapshot() == before

    def test_exact_fit_allowed(self, state):
        state.place_vm(0, 16, 32)
        assert state.free_cpu[0] == 0

    def test_unbalanced_unplace_detected(self, state):
        state.place_vm(0, 1, 1)
        state.unplace_vm(0, 1, 1)
        with pytest.raises(CapacityError):
            state.unplace_vm(0, 1, 1)

    def test_vm_fits(self, state):
        assert state.vm_fits(0, 16, 32)
        assert not state.vm_fits(0, 16.5, 32)


class TestVolumePlacement:
    def test_place_and_unplace_roundtrip(self, state):
        before = state.snapshot()
        state.place_volume(0, 100)
        assert state.free_disk[0] == 900
        assert state.host_is_active(0)  # volume activates its host
        state.unplace_volume(0, 100)
        assert state.snapshot() == before

    def test_oversize_volume_rejected(self, state):
        with pytest.raises(CapacityError):
            state.place_volume(0, 1001)

    def test_volume_fits(self, state):
        assert state.volume_fits(0, 1000)
        assert not state.volume_fits(0, 1000.5)


class TestBandwidth:
    def test_reserve_release_roundtrip(self, state, small_dc):
        path = small_dc.path(0, 4)
        before = state.snapshot()
        state.reserve_path(path, 500)
        for link in path:
            assert state.free_bw[link] == small_dc.link_capacity_mbps[link] - 500
        state.release_path(path, 500)
        assert state.snapshot() == before

    def test_reserve_is_all_or_nothing(self, state, small_dc):
        path = small_dc.path(0, 4)
        host_link = small_dc.hosts[0].link_index
        # starve the first host NIC
        state.reserve_path((host_link,), small_dc.link_capacity_mbps[host_link])
        before = state.snapshot()
        with pytest.raises(CapacityError):
            state.reserve_path(path, 100)
        assert state.snapshot() == before

    def test_zero_bandwidth_is_noop(self, state, small_dc):
        before = state.snapshot()
        state.reserve_path(small_dc.path(0, 4), 0)
        assert state.snapshot() == before

    def test_path_bandwidth_free(self, state, small_dc):
        path = small_dc.path(0, 4)
        assert state.path_bandwidth_free(path) == min(
            small_dc.link_capacity_mbps[l] for l in path
        )
        assert state.path_bandwidth_free(()) == float("inf")

    def test_can_reserve_cumulative(self, state, small_dc):
        host_link = small_dc.hosts[0].link_index
        cap = small_dc.link_capacity_mbps[host_link]
        assert state.can_reserve({host_link: cap})
        assert not state.can_reserve({host_link: cap + 1})


class TestClone:
    def test_clone_is_independent(self, state):
        clone = state.clone()
        clone.place_vm(0, 4, 4)
        assert state.free_cpu[0] == 16
        assert clone.free_cpu[0] == 12

    def test_clone_shares_cloud(self, state):
        assert state.clone().cloud is state.cloud


class TestBackgroundLoad:
    def test_consume_background_activates(self, state):
        state.consume_background(0, vcpus=4, mem_gb=4, nic_mbps=1000)
        assert state.free_cpu[0] == 12
        assert state.host_is_active(0)
        nic = state.cloud.hosts[0].link_index
        assert state.free_bw[nic] == state.cloud.link_capacity_mbps[nic] - 1000

    def test_consume_background_without_unit(self, state):
        state.consume_background(0, vcpus=4, mem_gb=4, count_as_unit=False)
        assert not state.host_is_active(0)
