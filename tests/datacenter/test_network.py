"""Tests for path resolution and flow tallying."""

from __future__ import annotations

from repro.datacenter.network import (
    PathResolver,
    tally_flows,
    total_reserved_bandwidth,
)


class TestPathResolver:
    def test_matches_cloud_path(self, podded_cloud):
        resolver = PathResolver(podded_cloud)
        for a, b in [(0, 0), (0, 1), (0, 2), (0, 4), (0, 8), (7, 3)]:
            assert sorted(resolver.path(a, b)) == sorted(podded_cloud.path(a, b))
            assert resolver.distance(a, b) == podded_cloud.distance(a, b)

    def test_caches_symmetrically(self, small_dc):
        resolver = PathResolver(small_dc)
        first = resolver.path(0, 5)
        assert resolver.path(5, 0) is first  # same cached object

    def test_hop_count(self, small_dc):
        resolver = PathResolver(small_dc)
        assert resolver.hop_count(0, 1) == 2
        assert resolver.hop_count(0, 0) == 0


class TestTallyFlows:
    def test_shared_links_accumulate(self, small_dc):
        resolver = PathResolver(small_dc)
        # two flows out of host 0 share host 0's NIC
        demand = tally_flows(resolver, [(0, 1, 100), (0, 2, 50)])
        nic0 = small_dc.hosts[0].link_index
        assert demand[nic0] == 150

    def test_zero_flows_skipped(self, small_dc):
        resolver = PathResolver(small_dc)
        assert tally_flows(resolver, [(0, 1, 0)]) == {}

    def test_intra_host_flow_no_demand(self, small_dc):
        resolver = PathResolver(small_dc)
        assert tally_flows(resolver, [(3, 3, 1000)]) == {}


class TestTotalReservedBandwidth:
    def test_counts_bandwidth_per_link(self, small_dc):
        resolver = PathResolver(small_dc)
        # same rack: 2 links; cross rack (pod-less): 4 links
        total = total_reserved_bandwidth(
            resolver, [(0, 1, 100), (0, 4, 10)]
        )
        assert total == 100 * 2 + 10 * 4

    def test_empty_flows(self, small_dc):
        resolver = PathResolver(small_dc)
        assert total_reserved_bandwidth(resolver, []) == 0.0
