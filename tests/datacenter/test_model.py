"""Tests for the static data-center structure."""

from __future__ import annotations

import pytest

from repro.datacenter.builder import build_datacenter
from repro.datacenter.model import Cloud, DataCenter, Disk, Host, Level, Rack
from repro.errors import DataCenterError


class TestIndexing:
    def test_testbed_counts(self, testbed):
        assert testbed.num_hosts == 16
        assert len(testbed.racks) == 1
        assert len(testbed.disks) == 16
        # one NIC link per host plus one ToR uplink
        assert testbed.num_links == 17

    def test_large_dc_counts(self):
        cloud = build_datacenter(num_racks=150, hosts_per_rack=16)
        assert cloud.num_hosts == 2400
        assert len(cloud.racks) == 150
        assert cloud.num_links == 2400 + 150

    def test_indices_are_dense_and_consistent(self, small_dc):
        for i, host in enumerate(small_dc.hosts):
            assert host.index == i
        for i, disk in enumerate(small_dc.disks):
            assert disk.index == i
            assert disk.host.disks[0] is disk

    def test_host_lookup_by_name(self, small_dc):
        host = small_dc.hosts[5]
        assert small_dc.host_by_name(host.name) is host
        with pytest.raises(DataCenterError):
            small_dc.host_by_name("nope")

    def test_disk_lookup_by_name(self, small_dc):
        disk = small_dc.disks[3]
        assert small_dc.disk_by_name(disk.name) is disk
        with pytest.raises(DataCenterError):
            small_dc.disk_by_name("nope")

    def test_duplicate_host_name_rejected(self):
        hosts = [
            Host(name="h", cpu_cores=4, mem_gb=8),
            Host(name="h", cpu_cores=4, mem_gb=8),
        ]
        rack = Rack(name="r", hosts=hosts)
        with pytest.raises(DataCenterError, match="duplicate host"):
            Cloud([DataCenter(name="d", racks=[rack])])

    def test_duplicate_disk_name_rejected(self):
        hosts = [
            Host(name="h1", cpu_cores=4, mem_gb=8, disks=[Disk("d", 10)]),
            Host(name="h2", cpu_cores=4, mem_gb=8, disks=[Disk("d", 10)]),
        ]
        rack = Rack(name="r", hosts=hosts)
        with pytest.raises(DataCenterError, match="duplicate disk"):
            Cloud([DataCenter(name="d", racks=[rack])])

    def test_empty_cloud_rejected(self):
        with pytest.raises(DataCenterError):
            Cloud([])
        with pytest.raises(DataCenterError):
            Cloud([DataCenter(name="d")])


class TestDistance:
    def test_same_host(self, small_dc):
        assert small_dc.distance(0, 0) == 0

    def test_same_rack(self, small_dc):
        assert small_dc.distance(0, 1) == 1

    def test_different_rack_podless_is_pod_distance(self, small_dc):
        # pod-less DC: each rack is its own implicit pod
        assert small_dc.distance(0, 4) == 3

    def test_podded_hierarchy_distances(self, podded_cloud):
        hosts = podded_cloud.hosts
        # layout: dc1-p1-r1-h1, dc1-p1-r1-h2, dc1-p1-r2-h1, ... 8 per DC
        assert podded_cloud.distance(0, 1) == 1  # same rack
        assert podded_cloud.distance(0, 2) == 2  # same pod, diff rack
        assert podded_cloud.distance(0, 4) == 3  # same DC, diff pod
        assert podded_cloud.distance(0, 8) == 4  # diff DC
        assert hosts[8].rack.datacenter.name == "dc2"

    def test_separated_at_levels(self, podded_cloud):
        assert podded_cloud.separated_at(0, 1, Level.HOST)
        assert not podded_cloud.separated_at(0, 1, Level.RACK)
        assert podded_cloud.separated_at(0, 2, Level.RACK)
        assert not podded_cloud.separated_at(0, 2, Level.POD)
        assert podded_cloud.separated_at(0, 4, Level.POD)
        assert not podded_cloud.separated_at(0, 4, Level.DATACENTER)
        assert podded_cloud.separated_at(0, 8, Level.DATACENTER)

    def test_rack_diversity_in_podless_dc(self, small_dc):
        # different racks in a pod-less DC satisfy rack AND pod diversity
        assert small_dc.separated_at(0, 4, Level.RACK)
        assert small_dc.separated_at(0, 4, Level.POD)


class TestPaths:
    def test_same_host_no_links(self, small_dc):
        assert small_dc.path(2, 2) == ()

    def test_same_rack_two_nic_links(self, small_dc):
        path = small_dc.path(0, 1)
        assert len(path) == 2
        names = [small_dc.link_names[l] for l in path]
        assert all(n.startswith("nic:") for n in names)

    def test_cross_rack_podless_four_links(self, small_dc):
        path = small_dc.path(0, 4)
        assert len(path) == 4
        names = [small_dc.link_names[l] for l in path]
        assert sum(n.startswith("nic:") for n in names) == 2
        assert sum(n.startswith("tor-uplink:") for n in names) == 2

    def test_cross_pod_six_links(self, podded_cloud):
        path = podded_cloud.path(0, 4)
        assert len(path) == 6

    def test_cross_dc_eight_links(self, podded_cloud):
        path = podded_cloud.path(0, 8)
        assert len(path) == 8
        names = [podded_cloud.link_names[l] for l in path]
        assert sum(n.startswith("wan:") for n in names) == 2

    def test_path_is_symmetric(self, podded_cloud):
        assert sorted(podded_cloud.path(0, 5)) == sorted(podded_cloud.path(5, 0))

    def test_hop_count_matches_path(self, podded_cloud):
        for a, b in [(0, 0), (0, 1), (0, 2), (0, 4), (0, 8)]:
            assert podded_cloud.hop_count(a, b) == len(podded_cloud.path(a, b))


class TestHopArithmetic:
    def test_max_hop_count_podless(self, small_dc):
        assert small_dc.max_hop_count() == 4

    def test_max_hop_count_podded_multi_dc(self, podded_cloud):
        assert podded_cloud.max_hop_count() == 8

    def test_min_hops_for_distance_podless(self, small_dc):
        assert small_dc.min_hops_for_distance(0) == 0
        assert small_dc.min_hops_for_distance(1) == 2
        assert small_dc.min_hops_for_distance(3) == 4

    def test_min_hops_for_distance_podded(self, podded_cloud):
        assert podded_cloud.min_hops_for_distance(1) == 2
        assert podded_cloud.min_hops_for_distance(2) == 4
        assert podded_cloud.min_hops_for_distance(3) == 6
        assert podded_cloud.min_hops_for_distance(4) == 8


class TestLevelParsing:
    def test_parse_all_levels(self):
        assert Level.parse("host") is Level.HOST
        assert Level.parse("RACK") is Level.RACK
        assert Level.parse(" pod ") is Level.POD
        assert Level.parse("datacenter") is Level.DATACENTER

    def test_parse_unknown_raises(self):
        with pytest.raises(DataCenterError):
            Level.parse("zone")


class TestBuilders:
    def test_testbed_host_specs(self, testbed):
        host = testbed.hosts[0]
        assert host.cpu_cores == 16
        assert host.mem_gb == 32
        assert host.total_disk_gb() == 1000.0
        assert host.nic_bw_mbps == 3200.0

    def test_large_dc_link_capacities(self):
        cloud = build_datacenter(num_racks=2, hosts_per_rack=2)
        host = cloud.hosts[0]
        assert cloud.link_capacity_mbps[host.link_index] == 10_000.0
        assert cloud.link_capacity_mbps[host.rack.link_index] == 100_000.0

    def test_build_cloud_structure(self, podded_cloud):
        assert len(podded_cloud.datacenters) == 2
        assert len(podded_cloud.pods) == 4
        assert len(podded_cloud.racks) == 8
        assert podded_cloud.num_hosts == 16
