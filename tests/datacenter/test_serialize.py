"""Tests for data-center JSON serialization."""

from __future__ import annotations

import pytest

from repro.datacenter.builder import build_cloud, build_datacenter, build_testbed
from repro.datacenter.serialize import (
    cloud_from_dict,
    cloud_to_dict,
    load_cloud,
    save_cloud,
)
from repro.errors import DataCenterError


def structural_fingerprint(cloud):
    return (
        [(h.name, h.cpu_cores, h.mem_gb, h.nic_bw_mbps) for h in cloud.hosts],
        [(d.name, d.capacity_gb, d.host.name) for d in cloud.disks],
        [(r.name, r.uplink_bw_mbps) for r in cloud.racks],
        [(p.name, p.uplink_bw_mbps) for p in cloud.pods],
        list(cloud.link_capacity_mbps),
        cloud.link_names,
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [
            build_testbed,
            lambda: build_datacenter(num_racks=3, hosts_per_rack=4),
            lambda: build_cloud(
                num_datacenters=2, pods_per_dc=2, racks_per_pod=2,
                hosts_per_rack=2,
            ),
        ],
        ids=["testbed", "podless", "podded-multi-dc"],
    )
    def test_exact_roundtrip(self, builder):
        original = builder()
        restored = cloud_from_dict(cloud_to_dict(original))
        assert structural_fingerprint(restored) == structural_fingerprint(
            original
        )

    def test_file_roundtrip(self, tmp_path):
        original = build_datacenter(num_racks=2, hosts_per_rack=2)
        path = str(tmp_path / "dc.json")
        save_cloud(original, path)
        restored = load_cloud(path)
        assert structural_fingerprint(restored) == structural_fingerprint(
            original
        )

    def test_paths_survive_roundtrip(self):
        original = build_cloud(
            num_datacenters=2, pods_per_dc=2, racks_per_pod=2, hosts_per_rack=2
        )
        restored = cloud_from_dict(cloud_to_dict(original))
        for a, b in [(0, 1), (0, 2), (0, 4), (0, 8)]:
            assert restored.path(a, b) == original.path(a, b)
            assert restored.distance(a, b) == original.distance(a, b)


class TestValidation:
    def test_missing_host_fields(self):
        bad = {
            "datacenters": [
                {
                    "name": "dc",
                    "racks": [
                        {"name": "r", "hosts": [{"name": "h"}]}
                    ],
                }
            ]
        }
        with pytest.raises(DataCenterError, match="host entry missing"):
            cloud_from_dict(bad)

    def test_missing_dc_name(self):
        with pytest.raises(DataCenterError, match="missing name"):
            cloud_from_dict({"datacenters": [{}]})

    def test_empty_description(self):
        with pytest.raises(DataCenterError):
            cloud_from_dict({"datacenters": []})

    def test_defaults_applied(self):
        cloud = cloud_from_dict(
            {
                "datacenters": [
                    {
                        "name": "dc",
                        "racks": [
                            {
                                "name": "r",
                                "hosts": [
                                    {
                                        "name": "h",
                                        "cpu_cores": 8,
                                        "mem_gb": 16,
                                    }
                                ],
                            }
                        ],
                    }
                ]
            }
        )
        assert cloud.hosts[0].nic_bw_mbps == 10_000.0
        assert cloud.racks[0].uplink_bw_mbps == 100_000.0
