"""Tests for ResourceVector arithmetic."""

from __future__ import annotations


from repro.datacenter.resources import EPSILON, ResourceVector


class TestArithmetic:
    def test_add_sub_roundtrip(self):
        a = ResourceVector(4, 8, 100)
        b = ResourceVector(1, 2, 30)
        assert a + b == ResourceVector(5, 10, 130)
        assert (a + b) - b == a

    def test_scalar_multiplication(self):
        v = ResourceVector(2, 4, 10)
        assert v * 2 == ResourceVector(4, 8, 20)
        assert 0.5 * v == ResourceVector(1, 2, 5)

    def test_zero_identity(self):
        v = ResourceVector(3, 5, 7)
        assert v + ResourceVector.zero() == v


class TestComparisons:
    def test_fits_within(self):
        small = ResourceVector(2, 2, 10)
        big = ResourceVector(4, 8, 100)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_fits_within_itself(self):
        v = ResourceVector(2, 2, 2)
        assert v.fits_within(v)

    def test_epsilon_tolerance(self):
        v = ResourceVector(2 + EPSILON / 2, 2, 2)
        assert v.fits_within(ResourceVector(2, 2, 2))

    def test_one_dimension_blocks(self):
        assert not ResourceVector(1, 9, 1).fits_within(
            ResourceVector(2, 8, 2)
        )

    def test_nonnegative(self):
        assert ResourceVector(0, 0, 0).is_nonnegative()
        assert ResourceVector(1, 2, 3).is_nonnegative()
        assert not ResourceVector(-1, 2, 3).is_nonnegative()
        # epsilon-scale negatives from float drift are tolerated
        assert ResourceVector(-EPSILON / 2, 0, 0).is_nonnegative()
