"""Property-based tests for the Section-VI extensions.

Latency-bounded pipes and CPU policies must uphold their contracts under
every algorithm and random topology: hop bounds are never exceeded by a
returned placement, and best-effort discounting is exactly linear and
reversible.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy import EG, EGBW, EGC
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_datacenter
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def latency_topologies(draw):
    """Chains with random per-link hop bounds."""
    topo = ApplicationTopology("lat")
    n = draw(st.integers(min_value=2, max_value=5))
    for i in range(n):
        topo.add_vm(f"vm{i}", draw(st.sampled_from([1, 2, 4])), 2)
    for i in range(n - 1):
        bound = draw(st.sampled_from([None, 0, 2, 4]))
        topo.connect(f"vm{i}", f"vm{i + 1}", 50, max_hops=bound)
    return topo


def small_cloud():
    return build_datacenter(num_racks=3, hosts_per_rack=3)


class TestLatencyProperties:
    @SETTINGS
    @given(topo=latency_topologies(), algo_i=st.integers(0, 2))
    def test_hop_bounds_always_respected(self, topo, algo_i):
        cloud = small_cloud()
        algorithm = [EG(), EGC(), EGBW()][algo_i]
        try:
            result = algorithm.place(topo, cloud)
        except PlacementError:
            return
        for link in topo.links:
            if link.max_hops is None:
                continue
            hops = cloud.hop_count(
                result.placement.host_of(link.a),
                result.placement.host_of(link.b),
            )
            assert hops <= link.max_hops, link

    @SETTINGS
    @given(topo=latency_topologies())
    def test_zero_bound_means_colocation(self, topo):
        cloud = small_cloud()
        try:
            result = EG().place(topo, cloud)
        except PlacementError:
            return
        for link in topo.links:
            if link.max_hops == 0:
                assert result.placement.host_of(
                    link.a
                ) == result.placement.host_of(link.b)


class TestCpuPolicyProperties:
    @SETTINGS
    @given(
        vcpus=st.floats(min_value=0.5, max_value=16),
        factor=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_discount_is_linear(self, vcpus, factor):
        topo = ApplicationTopology()
        vm = topo.add_vm("x", vcpus, 1, cpu_policy="best_effort")
        assert vm.effective_vcpus(factor) == pytest.approx(vcpus * factor)
        strict = ApplicationTopology().add_vm("y", vcpus, 1)
        assert strict.effective_vcpus(factor) == vcpus

    @SETTINGS
    @given(
        vcpus=st.sampled_from([1, 2, 4, 8]),
        factor=st.sampled_from([0.25, 0.5, 0.75]),
        policy=st.sampled_from(["guaranteed", "best_effort"]),
    )
    def test_assign_unassign_roundtrip_with_policy(
        self, vcpus, factor, policy
    ):
        cloud = small_cloud()
        topo = ApplicationTopology()
        topo.add_vm("x", vcpus, 1, cpu_policy=policy)
        state = DataCenterState(cloud, best_effort_cpu_factor=factor)
        partial = PartialPlacement(topo, state, PathResolver(cloud))
        before = partial.state.snapshot()
        partial.assign("x", 0)
        expected = vcpus * factor if policy == "best_effort" else vcpus
        assert partial.state.free_cpu[0] == pytest.approx(
            cloud.hosts[0].cpu_cores - expected
        )
        partial.unassign("x")
        assert partial.state.snapshot() == before
