"""Tests for the VNF service-chain workload generator."""

from __future__ import annotations

import pytest

from repro.core.greedy import EG
from repro.datacenter.model import Level
from repro.errors import TopologyError
from repro.workloads.vnf import DEFAULT_CHAIN, VNFStage, build_vnf_chain
from tests.core.test_greedy import verify_placement_feasible


class TestDefaultChain:
    def test_structure(self):
        topo = build_vnf_chain()
        assert len(topo.vms()) == 6  # 2 fw + 2 routers + 2 caches
        assert len(topo.volumes()) == 2  # cache stores
        # 3 stages -> 3 HA zones
        assert len(topo.zones) == 3
        assert all(z.level is Level.RACK for z in topo.zones)

    def test_chain_links(self):
        topo = build_vnf_chain()
        # fw->router 2x2 @ 800, router->cache 2x2 @ 1200, cache->store 2 @ 1500
        bws = sorted(l.bw_mbps for l in topo.links)
        assert bws == [800] * 4 + [1200] * 4 + [1500] * 2

    def test_validates_and_places(self, small_dc):
        topo = build_vnf_chain()
        topo.validate()
        from repro.datacenter.state import DataCenterState

        base = DataCenterState(small_dc)
        result = EG().place(topo, small_dc, base)
        verify_placement_feasible(topo, small_dc, base, result.placement)
        # HA actually achieved: firewalls on different racks
        fw_racks = {
            small_dc.hosts[result.placement.host_of(f"firewall{i}")].rack.name
            for i in (1, 2)
        }
        assert len(fw_racks) == 2


class TestCustomChains:
    def test_single_stage(self):
        topo = build_vnf_chain([VNFStage("lb", instances=3)])
        assert len(topo.vms()) == 3
        assert len(topo.links) == 0
        (zone,) = topo.zones
        assert len(zone.members) == 3

    def test_single_instance_stage_has_no_zone(self):
        topo = build_vnf_chain(
            [VNFStage("nat", instances=1, egress_bw_mbps=100),
             VNFStage("fw", instances=2)]
        )
        assert len(topo.zones) == 1  # only the fw stage

    def test_zero_egress_breaks_chain(self):
        topo = build_vnf_chain(
            [VNFStage("a", instances=1, egress_bw_mbps=0),
             VNFStage("b", instances=1)]
        )
        assert topo.links == []

    def test_empty_chain_rejected(self):
        with pytest.raises(TopologyError):
            build_vnf_chain([])

    def test_zero_instances_rejected(self):
        with pytest.raises(TopologyError):
            build_vnf_chain([VNFStage("x", instances=0)])

    def test_default_chain_constant_sane(self):
        names = [s.name for s in DEFAULT_CHAIN]
        assert names == ["firewall", "router", "cache"]
