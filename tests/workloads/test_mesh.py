"""Tests for the mesh-communication workload generator."""

from __future__ import annotations

import pytest

from repro.datacenter.model import Level
from repro.errors import TopologyError
from repro.workloads.mesh import build_mesh


class TestStructure:
    def test_zones_of_five(self):
        topo = build_mesh(total_vms=25)
        assert len(topo.vms()) == 25
        assert len(topo.zones) == 5
        for zone in topo.zones:
            assert len(zone.members) == 5
            assert zone.level is Level.HOST

    def test_zone_fanout_roughly_80_percent(self):
        topo = build_mesh(total_vms=100, seed=1)
        # 20 zones; each picked ~80% of the other 19 => ~15 peers; union of
        # undirected pairs is at least that dense.
        zone_pairs = set()
        for link in topo.links:
            za = link.a.split("-")[0]
            zb = link.b.split("-")[0]
            zone_pairs.add((min(za, zb), max(za, zb)))
        max_pairs = 20 * 19 // 2
        assert len(zone_pairs) >= 0.8 * max_pairs

    def test_links_connect_distinct_zones(self):
        topo = build_mesh(total_vms=50, seed=2)
        for link in topo.links:
            assert link.a.split("-")[0] != link.b.split("-")[0]

    def test_homogeneous_sweep_sizes(self):
        for size in range(35, 281, 35):
            topo = build_mesh(total_vms=size, heterogeneous=False)
            assert len(topo.vms()) == size

    def test_indivisible_rejected(self):
        with pytest.raises(TopologyError, match="divisible"):
            build_mesh(total_vms=26)


class TestDeterminism:
    def test_same_seed_same_topology(self):
        a = build_mesh(total_vms=50, seed=7)
        b = build_mesh(total_vms=50, seed=7)
        assert {(l.a, l.b, l.bw_mbps) for l in a.links} == {
            (l.a, l.b, l.bw_mbps) for l in b.links
        }

    def test_different_seed_different_links(self):
        a = build_mesh(total_vms=50, seed=1)
        b = build_mesh(total_vms=50, seed=2)
        assert {(l.a, l.b) for l in a.links} != {(l.a, l.b) for l in b.links}


class TestRequirements:
    def test_zone_mates_identical(self):
        topo = build_mesh(total_vms=100, heterogeneous=True, seed=3)
        for zone in topo.zones:
            sizes = {
                (topo.node(m).vcpus, topo.node(m).mem_gb)
                for m in zone.members
            }
            assert len(sizes) == 1

    def test_mesh_is_more_bandwidth_hungry_than_multitier(self):
        from repro.workloads.multitier import build_multitier

        mesh = build_mesh(total_vms=100, heterogeneous=True)
        tiered = build_multitier(total_vms=100, heterogeneous=True)
        assert (
            mesh.total_link_bandwidth() > tiered.total_link_bandwidth()
        )

    def test_generated_topologies_validate(self):
        build_mesh(total_vms=75, seed=5).validate()
