"""Tests for the requirement mixes (Table III)."""

from __future__ import annotations

from collections import Counter

from repro.workloads.requirements import (
    HETEROGENEOUS_MIX,
    HOMOGENEOUS_MIX,
    HOMOGENEOUS_SPEC,
    mix_for,
)


class TestHeterogeneousMix:
    def test_table_iii_shares_at_multiples_of_five(self):
        specs = HETEROGENEOUS_MIX.assign(100)
        counts = Counter(s.vcpus for s in specs)
        assert counts[1] == 40
        assert counts[2] == 20
        assert counts[4] == 40

    def test_apportionment_with_awkward_counts(self):
        for count in (7, 13, 25, 33):
            specs = HETEROGENEOUS_MIX.assign(count)
            assert len(specs) == count
            counts = Counter(s.vcpus for s in specs)
            # each class within 1 of its exact quota
            assert abs(counts[1] - 0.4 * count) <= 1
            assert abs(counts[2] - 0.2 * count) <= 1
            assert abs(counts[4] - 0.4 * count) <= 1

    def test_deterministic(self):
        assert HETEROGENEOUS_MIX.assign(50) == HETEROGENEOUS_MIX.assign(50)

    def test_classes_interleaved(self):
        specs = HETEROGENEOUS_MIX.assign(30)
        first_ten = {s.vcpus for s in specs[:10]}
        assert len(first_ten) > 1  # not a solid block of one class

    def test_zero_and_negative_counts(self):
        assert HETEROGENEOUS_MIX.assign(0) == []
        assert HETEROGENEOUS_MIX.assign(-3) == []

    def test_network_class_has_highest_bandwidth(self):
        by_cpu = {s.vcpus: s for _, s in HETEROGENEOUS_MIX.classes}
        assert by_cpu[1].link_bw_mbps == 100
        assert by_cpu[4].link_bw_mbps == 10


class TestHomogeneous:
    def test_single_spec(self):
        specs = HOMOGENEOUS_MIX.assign(10)
        assert all(s == HOMOGENEOUS_SPEC for s in specs)

    def test_paper_values(self):
        assert HOMOGENEOUS_SPEC.vcpus == 2
        assert HOMOGENEOUS_SPEC.mem_gb == 2
        assert HOMOGENEOUS_SPEC.link_bw_mbps == 50


class TestMixFor:
    def test_selects_regime(self):
        assert mix_for(True) is HETEROGENEOUS_MIX
        assert mix_for(False) is HOMOGENEOUS_MIX
