"""Tests for the QFS application topology (Fig. 5)."""

from __future__ import annotations

from repro.datacenter.model import Level
from repro.workloads.qfs import (
    HIGH_BW_MBPS,
    LOW_BW_MBPS,
    build_qfs,
)


class TestPaperCounts:
    def test_headline_counts(self):
        topo = build_qfs()
        # 1 client + 1 meta + 12 chunk servers
        assert len(topo.vms()) == 14
        # 12 chunk volumes + 2 meta volumes + 1 client volume
        assert len(topo.volumes()) == 15

    def test_vm_sizes_match_fig5(self):
        topo = build_qfs()
        client = topo.node("client")
        meta = topo.node("meta")
        chunk = topo.node("chunk1")
        assert (client.vcpus, client.mem_gb) == (4, 8)
        assert (meta.vcpus, meta.mem_gb) == (2, 2)
        assert (chunk.vcpus, chunk.mem_gb) == (2, 2)

    def test_volume_sizes_match_fig5(self):
        topo = build_qfs()
        assert topo.node("chunk-vol1").size_gb == 120
        assert topo.node("meta-vol1").size_gb == 10
        assert topo.node("client-vol").size_gb == 10

    def test_heterogeneous_bandwidths(self):
        topo = build_qfs()
        links = {(l.a, l.b): l.bw_mbps for l in topo.links}
        assert links[("client", "meta")] == LOW_BW_MBPS
        assert links[("chunk1", "chunk-vol1")] == HIGH_BW_MBPS
        assert links[("client", "chunk1")] == HIGH_BW_MBPS

    def test_chunk_volume_diversity_zone(self):
        topo = build_qfs()
        (zone,) = topo.zones
        assert zone.level is Level.HOST
        assert len(zone.members) == 12
        assert all(m.startswith("chunk-vol") for m in zone.members)


class TestParameterization:
    def test_custom_chunk_count(self):
        topo = build_qfs(chunk_servers=4)
        assert len([v for v in topo.vms() if v.name.startswith("chunk")]) == 4
        (zone,) = topo.zones
        assert len(zone.members) == 4

    def test_no_heartbeats(self):
        topo = build_qfs(chunk_heartbeats=False)
        assert all(
            not (l.a == "meta" and l.b.startswith("chunk"))
            for l in topo.links
        )

    def test_single_chunk_server_has_no_zone(self):
        topo = build_qfs(chunk_servers=1)
        assert topo.zones == []

    def test_validates(self):
        build_qfs().validate()
