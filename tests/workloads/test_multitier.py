"""Tests for the multi-tier workload generator."""

from __future__ import annotations

import pytest

from repro.datacenter.model import Level
from repro.errors import TopologyError
from repro.workloads.multitier import build_multitier


class TestStructure:
    def test_paper_default_shape(self):
        topo = build_multitier(total_vms=25)
        assert len(topo.vms()) == 25
        assert len(topo.volumes()) == 0
        # 5 tiers x 2 zones
        assert len(topo.zones) == 10

    def test_default_fanout_links(self):
        topo = build_multitier(total_vms=25, tiers=5)
        # 4 tier boundaries x 5 VMs x fanout 2
        assert len(topo.links) == 4 * 5 * 2

    def test_full_bipartite_option(self):
        topo = build_multitier(total_vms=25, tiers=5, fanout=None)
        assert len(topo.links) == 4 * 25

    def test_fanout_larger_than_tier_clamped(self):
        topo = build_multitier(total_vms=10, tiers=5, fanout=99)
        # tiers of 2: at most 2 distinct peers per VM
        assert len(topo.links) == 4 * 2 * 2

    def test_all_sizes_of_figure7(self):
        for size in range(25, 201, 25):
            topo = build_multitier(total_vms=size)
            assert len(topo.vms()) == size

    def test_indivisible_size_rejected(self):
        with pytest.raises(TopologyError, match="divisible"):
            build_multitier(total_vms=26, tiers=5)

    def test_zone_members_within_tier(self):
        topo = build_multitier(total_vms=50)
        for zone in topo.zones:
            tiers = {m.split("-")[0] for m in zone.members}
            assert len(tiers) == 1
            assert zone.level is Level.HOST


class TestRequirements:
    def test_zone_mates_have_identical_requirements(self):
        topo = build_multitier(total_vms=100, heterogeneous=True)
        for zone in topo.zones:
            vectors = {topo.requirement_vector(m)[:2] for m in zone.members}
            assert len(vectors) == 1

    def test_heterogeneous_mixes_classes_across_tiers(self):
        topo = build_multitier(total_vms=100, heterogeneous=True)
        cpu_values = {vm.vcpus for vm in topo.vms()}
        assert cpu_values == {1, 2, 4}

    def test_homogeneous_single_class(self):
        topo = build_multitier(total_vms=100, heterogeneous=False)
        assert {vm.vcpus for vm in topo.vms()} == {2}
        assert {l.bw_mbps for l in topo.links} == {50}

    def test_link_bw_is_min_of_endpoint_classes(self):
        topo = build_multitier(total_vms=25, heterogeneous=True)
        for link in topo.links:
            a_bw = {
                1: 100, 2: 50, 4: 10
            }[topo.node(link.a).vcpus]
            b_bw = {
                1: 100, 2: 50, 4: 10
            }[topo.node(link.b).vcpus]
            assert link.bw_mbps == min(a_bw, b_bw)


class TestValidation:
    def test_generated_topologies_validate(self):
        for size in (25, 100, 200):
            build_multitier(total_vms=size).validate()

    def test_descriptive_names(self):
        assert build_multitier(50).name == "multitier-50-het"
        assert build_multitier(50, heterogeneous=False).name == "multitier-50-hom"
