"""Guard: the README's quickstart code must actually run.

Extracts every fenced python block from README.md and executes it in one
shared namespace, so documentation drift breaks the build instead of the
first user's afternoon. Also runs the telemetry example end to end.
"""

from __future__ import annotations

import re
import runpy
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"
TRACING_EXAMPLE = Path(__file__).parent.parent / "examples" / "tracing.py"

#: blocks containing these markers need artifacts the snippet doesn't
#: build itself (template dicts, running services); they are validated by
#: the dedicated integration tests instead.
_SKIP_MARKERS = ("template_dict",)


def _python_blocks():
    text = README.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    return [
        block
        for block in blocks
        if not any(marker in block for marker in _SKIP_MARKERS)
    ]


class TestReadme:
    def test_readme_exists_and_has_snippets(self):
        assert README.exists()
        assert len(_python_blocks()) >= 1

    @pytest.mark.parametrize(
        "index,block",
        list(enumerate(_python_blocks())),
        ids=lambda v: str(v) if isinstance(v, int) else "block",
    )
    def test_python_blocks_execute(self, index, block):
        namespace: dict = {}
        exec(compile(block, f"README.md:block{index}", "exec"), namespace)


class TestTracingExample:
    def test_tracing_example_runs(self, capsys):
        runpy.run_path(str(TRACING_EXAMPLE), run_name="__main__")
        out = capsys.readouterr().out
        assert "ostro telemetry summary" in out
        assert "estimate_computed" in out
        assert "trace:" in out
        # the example's scoped enablement must not leak
        from repro import obs

        assert not obs.is_enabled()
