"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_cloud, build_datacenter, build_testbed
from repro.datacenter.model import Level
from repro.datacenter.state import DataCenterState


@pytest.fixture
def testbed():
    """The paper's 16-host single-rack cluster."""
    return build_testbed()


@pytest.fixture
def small_dc():
    """A small pod-less data center: 4 racks x 4 hosts."""
    return build_datacenter(num_racks=4, hosts_per_rack=4)


@pytest.fixture
def podded_cloud():
    """A 2-DC cloud with pods, exercising every hierarchy level."""
    return build_cloud(
        num_datacenters=2, pods_per_dc=2, racks_per_pod=2, hosts_per_rack=2
    )


@pytest.fixture
def small_state(small_dc):
    return DataCenterState(small_dc)


def make_three_tier(
    web: int = 2, app: int = 2, db: int = 2, with_zones: bool = True
) -> ApplicationTopology:
    """A small three-tier topology used across tests."""
    topo = ApplicationTopology("three-tier")
    for i in range(web):
        topo.add_vm(f"web{i}", vcpus=1, mem_gb=1)
    for i in range(app):
        topo.add_vm(f"app{i}", vcpus=2, mem_gb=2)
    for i in range(db):
        topo.add_vm(f"db{i}", vcpus=4, mem_gb=4)
        topo.add_volume(f"vol{i}", size_gb=50)
        topo.connect(f"db{i}", f"vol{i}", bw_mbps=200)
    for i in range(web):
        for j in range(app):
            topo.connect(f"web{i}", f"app{j}", bw_mbps=100)
    for i in range(app):
        for j in range(db):
            topo.connect(f"app{i}", f"db{j}", bw_mbps=50)
    if with_zones and db >= 2:
        topo.add_zone(
            "db-diversity", Level.HOST, [f"db{i}" for i in range(db)]
        )
    return topo


@pytest.fixture
def three_tier():
    return make_three_tier()
