"""Recorder facade: null no-ops, enable/disable/use, end-to-end capture."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.scheduler import Ostro


class TestNullRecorder:
    def test_default_recorder_is_the_shared_null(self):
        assert obs.get_recorder() is obs.NULL
        assert not obs.is_enabled()
        assert not obs.get_recorder().enabled

    def test_every_operation_is_a_noop(self):
        rec = obs.NULL
        rec.inc("ostro_placements_total", algorithm="eg")
        rec.set_gauge("ostro_open_list_size", 3)
        rec.observe("ostro_estimate_seconds", 0.001)
        rec.event("remove", app="a")
        with rec.span("anything", app="a") as span:
            assert span is None


class TestSwitching:
    def test_enable_installs_and_disable_restores(self):
        rec = obs.enable()
        try:
            assert obs.get_recorder() is rec
            assert obs.is_enabled()
        finally:
            obs.disable()
        assert obs.get_recorder() is obs.NULL
        assert not obs.is_enabled()

    def test_use_restores_previous_recorder(self):
        outer = obs.enable()
        try:
            inner = obs.TelemetryRecorder()
            with obs.use(inner) as active:
                assert active is inner
                assert obs.get_recorder() is inner
            assert obs.get_recorder() is outer
        finally:
            obs.disable()

    def test_use_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with obs.use(obs.TelemetryRecorder()):
                raise RuntimeError
        assert obs.get_recorder() is obs.NULL


class TestMetricRouting:
    def test_catalog_metrics_get_help_and_labels(self):
        rec = obs.TelemetryRecorder()
        rec.inc("ostro_placements_total", algorithm="eg")
        metric = rec.registry.get("ostro_placements_total")
        assert metric.kind == "counter"
        assert metric.labelnames == ("algorithm",)
        assert metric.help  # from METRIC_CATALOG

    def test_kind_mismatch_against_catalog_raises(self):
        rec = obs.TelemetryRecorder()
        with pytest.raises(obs.TelemetryError):
            rec.observe("ostro_placements_total", 1.0, algorithm="eg")

    def test_uncataloged_metric_created_from_first_use(self):
        rec = obs.TelemetryRecorder()
        rec.inc("ostro_adhoc_total", kind="x")
        assert rec.registry.get("ostro_adhoc_total").value(kind="x") == 1.0

    def test_span_close_feeds_histogram_and_events(self):
        rec = obs.TelemetryRecorder()
        with rec.span("eg.place", app="shop"):
            pass
        assert rec.registry.get("ostro_span_seconds").count(span="eg.place") == 1
        (event,) = rec.events.of_type("span")
        assert event.fields["name"] == "eg.place"
        assert event.fields["app"] == "shop"


class TestEndToEnd:
    def test_enabled_eg_run_records_everything(self, small_dc, three_tier):
        rec = obs.TelemetryRecorder()
        with obs.use(rec):
            Ostro(small_dc).place(three_tier, algorithm="eg", commit=False)

        assert rec.events.count("placement_started") == 1
        assert rec.events.count("placement_finished") == 1
        assert rec.events.count("node_placed") >= three_tier.size()
        assert rec.events.count("estimate_computed") >= 1

        registry = rec.registry
        assert registry.get("ostro_placements_total").value(algorithm="eg") == 1
        assert registry.get("ostro_candidates_scored_total").value() >= 1
        assert registry.get("ostro_estimate_seconds").count() >= 1
        assert registry.get("ostro_placement_seconds").count(algorithm="eg") == 1

        summary = rec.summary()
        assert "=== ostro telemetry summary ===" in summary
        assert "candidates scored" in summary
        assert "eg.place" in summary  # the trace tree survived

    def test_dba_star_run_records_search_events(self, small_dc, three_tier):
        rec = obs.TelemetryRecorder()
        with obs.use(rec):
            Ostro(small_dc).place(
                three_tier, algorithm="dba*", deadline_s=1.0, commit=False
            )
        assert rec.events.count("path_expanded") >= 1
        assert rec.registry.get("ostro_nodes_expanded_total").value() >= 1
        assert rec.registry.get("ostro_eg_bound_runs_total").value() >= 1

    def test_disabled_run_emits_nothing(self, small_dc, three_tier):
        rec = obs.enable()
        Ostro(small_dc).place(three_tier, algorithm="eg", commit=False)
        recorded = rec.events.count()
        assert recorded > 0
        obs.disable()
        # same placement again: the old recorder must stay frozen and the
        # null recorder must accumulate nothing anywhere
        Ostro(small_dc).place(three_tier, algorithm="eg", commit=False)
        assert rec.events.count() == recorded

    def test_failure_records_and_reraises(self, small_dc):
        from repro.core.topology import ApplicationTopology
        from repro.errors import PlacementError

        impossible = ApplicationTopology("huge")
        impossible.add_vm("big", vcpus=10_000, mem_gb=10_000)
        rec = obs.TelemetryRecorder()
        with obs.use(rec):
            with pytest.raises(PlacementError):
                Ostro(small_dc).place(impossible, algorithm="eg", commit=False)
        (event,) = rec.events.of_type("placement_failed")
        assert event.fields["error"]
        assert (
            rec.registry.get("ostro_placement_failures_total").value(
                algorithm="eg"
            )
            == 1
        )

    def test_sweep_accepts_a_recorder(self):
        from repro.sim.runner import sweep
        from repro.sim.scenarios import multitier_scenario

        rec = obs.TelemetryRecorder()
        rows = sweep(
            multitier_scenario(),
            algorithms=("egc",),
            sizes=(10,),
            recorder=rec,
        )
        assert rows
        assert rec.events.count("placement_finished") >= 1
        assert obs.get_recorder() is obs.NULL  # restored afterwards

    def test_clear_resets_all_three_surfaces(self):
        rec = obs.TelemetryRecorder()
        rec.inc("ostro_commits_total")
        rec.event("remove", app="a")
        with rec.span("x"):
            pass
        rec.clear()
        assert len(rec.registry) == 0
        assert rec.events.count() == 0
        assert rec.tracer.roots == []
