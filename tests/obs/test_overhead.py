"""Regression: disabled telemetry must stay effectively free.

The guard contract is that every instrumented hot path does at most a
``get_recorder()`` + ``rec.enabled`` check (plus a handful of no-op span
contexts) when telemetry is off. Rather than an A/B wall-clock comparison
(flaky under CI noise), this test derives the bound deterministically:

1. count how often a small EG placement actually consults the recorder,
   using a counting stand-in that still reports ``enabled = False``;
2. measure the real per-consultation cost of the null path in isolation;
3. assert count x cost stays under 5% of the measured placement runtime.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.scheduler import Ostro


class _CountingDisabled(obs.Recorder):
    """Reports disabled, but counts every consultation."""

    def __init__(self):
        self.checks = 0
        self.spans = 0

    @property
    def enabled(self):
        self.checks += 1
        return False

    def span(self, name, **attrs):
        self.spans += 1
        return obs.trace.NULL_SPAN


def _measure_placement_s(cloud, topology, repeats: int = 3) -> float:
    Ostro(cloud).place(topology, algorithm="eg", commit=False)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        ostro = Ostro(cloud)
        t0 = time.perf_counter()
        ostro.place(topology, algorithm="eg", commit=False)
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_null_costs():
    """Per-call cost of (get_recorder + enabled check) and a null span."""
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        rec = obs.get_recorder()
        if rec.enabled:  # pragma: no cover - never true here
            raise AssertionError
    per_check = (time.perf_counter() - t0) / n

    null = obs.NULL
    m = 20_000
    t0 = time.perf_counter()
    for _ in range(m):
        with null.span("x"):
            pass
    per_span = (time.perf_counter() - t0) / m
    return per_check, per_span


class TestDisabledOverhead:
    def test_noop_recorder_under_five_percent(self, small_dc, three_tier):
        assert obs.get_recorder() is obs.NULL  # telemetry off
        placement_s = _measure_placement_s(small_dc, three_tier)

        counting = _CountingDisabled()
        with obs.use(counting):
            Ostro(small_dc).place(three_tier, algorithm="eg", commit=False)
        assert counting.checks > 0  # instrumentation is actually in place

        per_check, per_span = _measure_null_costs()
        estimated_overhead_s = (
            counting.checks * per_check + counting.spans * per_span
        )
        budget_s = 0.05 * placement_s
        assert estimated_overhead_s < budget_s, (
            f"{counting.checks} enabled-checks x {per_check * 1e9:.0f} ns "
            f"+ {counting.spans} null spans x {per_span * 1e9:.0f} ns = "
            f"{estimated_overhead_s * 1e6:.1f} us, over 5% of the "
            f"{placement_s * 1e3:.2f} ms placement"
        )

    def test_disabled_run_allocates_no_telemetry_state(
        self, small_dc, three_tier
    ):
        # a fresh, *uninstalled* recorder must stay untouched by a
        # disabled-run placement (nothing records into stray objects)
        bystander = obs.TelemetryRecorder()
        Ostro(small_dc).place(three_tier, algorithm="eg", commit=False)
        assert bystander.events.count() == 0
        assert len(bystander.registry) == 0
        assert bystander.tracer.roots == []
