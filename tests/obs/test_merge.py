"""Telemetry merge semantics (the parallel-execution contract).

Worker processes record into fresh recorders; the parent folds them back
in cell order. These tests pin the semantics that make a merged parallel
run indistinguishable from a serial one: counters add, gauges take the
last merged value, histograms merge bucket-by-bucket, and event ``seq``
numbers continue the parent's sequence.
"""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.obs import (
    Counter,
    EventLog,
    Gauge,
    Histogram,
    Registry,
    TelemetryError,
    TelemetryRecorder,
)


class TestCounterMerge:
    def test_totals_add_per_label(self):
        a = Counter("ostro_test_total", labelnames=("algorithm",))
        b = Counter("ostro_test_total", labelnames=("algorithm",))
        a.inc(2, algorithm="eg")
        b.inc(3, algorithm="eg")
        b.inc(1, algorithm="dba*")
        a.merge_from(b)
        assert a.value(algorithm="eg") == 5.0
        assert a.value(algorithm="dba*") == 1.0
        # the source is untouched
        assert b.value(algorithm="eg") == 3.0


class TestGaugeMerge:
    def test_merged_value_wins(self):
        a = Gauge("ostro_open_list_size")
        b = Gauge("ostro_open_list_size")
        a.set(10)
        b.set(3)
        a.merge_from(b)
        assert a.value() == 3.0

    def test_labels_missing_from_other_survive(self):
        a = Gauge("ostro_test", labelnames=("k",))
        b = Gauge("ostro_test", labelnames=("k",))
        a.set(1, k="only-a")
        b.set(2, k="both")
        a.set(9, k="both")
        a.merge_from(b)
        assert a.value(k="only-a") == 1.0
        assert a.value(k="both") == 2.0


class TestHistogramMerge:
    def test_buckets_counts_and_sums_add(self):
        a = Histogram("ostro_test_seconds", buckets=(0.1, 1.0))
        b = Histogram("ostro_test_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5):
            a.observe(v)
        for v in (0.5, 5.0):
            b.observe(v)
        a.merge_from(b)
        assert a.count() == 4
        assert a.sum() == pytest.approx(6.05)

    def test_bucket_mismatch_rejected(self):
        a = Histogram("ostro_test_seconds", buckets=(0.1, 1.0))
        b = Histogram("ostro_test_seconds", buckets=(0.1, 2.0))
        with pytest.raises(TelemetryError):
            a.merge_from(b)


class TestRegistryMerge:
    def test_missing_metrics_created_with_metadata(self):
        parent, worker = Registry(), Registry()
        worker.counter("ostro_w_total", "from the worker", ("k",)).inc(
            2, k="x"
        )
        parent.merge(worker)
        merged = parent.counter("ostro_w_total", "from the worker", ("k",))
        assert merged.value(k="x") == 2.0

    def test_existing_metrics_accumulate(self):
        parent, worker = Registry(), Registry()
        parent.counter("ostro_t_total", "", ()).inc(1)
        worker.counter("ostro_t_total", "", ()).inc(4)
        parent.merge(worker)
        assert parent.counter("ostro_t_total", "", ()).value() == 5.0


class TestEventLogMerge:
    def test_seq_continues_parent_sequence(self):
        parent, worker = EventLog(), EventLog()
        parent.emit("commit", app="a", nodes=1)
        worker.emit("commit", app="b", nodes=2)
        worker.emit("remove", app="b")
        parent.merge(worker)
        assert [e.seq for e in parent.events] == [1, 2, 3]
        assert [e.fields.get("app") for e in parent.events] == ["a", "b", "b"]

    def test_cap_still_applies_and_drops_carry_over(self):
        parent = EventLog(max_events=2)
        worker = EventLog()
        parent.emit("commit", app="a", nodes=1)
        worker.emit("commit", app="b", nodes=1)
        worker.emit("commit", app="c", nodes=1)
        parent.merge(worker)
        assert len(parent.events) == 2
        assert parent.dropped == 1


class TestRecorderMerge:
    def test_counts_match_equivalent_serial_run(self):
        serial = TelemetryRecorder()
        with obs.use(serial):
            obs.get_recorder().inc("ostro_commits_total")
            obs.get_recorder().event("commit", app="a", nodes=3)
            obs.get_recorder().inc("ostro_commits_total")
            obs.get_recorder().event("commit", app="b", nodes=2)

        parent = TelemetryRecorder()
        workers = [TelemetryRecorder(), TelemetryRecorder()]
        for recorder, app, nodes in zip(workers, ("a", "b"), (3, 2)):
            with obs.use(recorder):
                obs.get_recorder().inc("ostro_commits_total")
                obs.get_recorder().event("commit", app=app, nodes=nodes)
        for recorder in workers:
            parent.merge(recorder)

        counter = parent.registry.counter("ostro_commits_total", "", ())
        assert counter.value() == 2.0
        assert parent.events.count("commit") == serial.events.count("commit")
        assert [e.fields["app"] for e in parent.events.of_type("commit")] == [
            "a",
            "b",
        ]

    def test_recorder_pickles_across_process_boundary(self):
        recorder = TelemetryRecorder()
        with obs.use(recorder):
            obs.get_recorder().inc("ostro_commits_total")
            with obs.get_recorder().span("placement", algorithm="eg"):
                pass
        clone = pickle.loads(pickle.dumps(recorder))
        counter = clone.registry.counter("ostro_commits_total", "", ())
        assert counter.value() == 1.0
        assert clone.events.count("span") == 1
