"""Counter/gauge/histogram semantics and Prometheus rendering."""

from __future__ import annotations

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    TelemetryError,
    render_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("ostro_test_total")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_rejects_negative_increments(self):
        c = Counter("ostro_test_total")
        with pytest.raises(TelemetryError):
            c.inc(-1.0)

    def test_labels_create_independent_children(self):
        c = Counter("ostro_test_total", labelnames=("algorithm",))
        c.inc(algorithm="eg")
        c.inc(2, algorithm="dba*")
        assert c.value(algorithm="eg") == 1.0
        assert c.value(algorithm="dba*") == 2.0
        assert c.value(algorithm="egc") == 0.0

    def test_label_mismatch_raises(self):
        c = Counter("ostro_test_total", labelnames=("algorithm",))
        with pytest.raises(TelemetryError):
            c.inc()  # missing the declared label
        with pytest.raises(TelemetryError):
            c.inc(algorithm="eg", extra="x")  # undeclared label


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("ostro_open_list_size")
        g.set(7)
        assert g.value() == 7.0
        g.inc(-3)
        assert g.value() == 4.0


class TestHistogram:
    def test_count_sum_and_cumulative_buckets(self):
        h = Histogram("ostro_test_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count() == 5
        assert h.sum() == pytest.approx(56.05)
        # cumulative counts end with +Inf == total count
        assert h.bucket_values() == [
            (0.1, 1),
            (1.0, 3),
            (10.0, 4),
            (float("inf"), 5),
        ]

    def test_buckets_must_increase(self):
        with pytest.raises(TelemetryError):
            Histogram("ostro_bad_seconds", buckets=(1.0, 0.5))
        with pytest.raises(TelemetryError):
            Histogram("ostro_bad_seconds", buckets=(1.0, 1.0))

    def test_labeled_children_are_independent(self):
        h = Histogram(
            "ostro_test_seconds", labelnames=("algorithm",), buckets=(1.0,)
        )
        h.observe(0.5, algorithm="eg")
        assert h.count(algorithm="eg") == 1
        assert h.count(algorithm="dba*") == 0


class TestRegistry:
    def test_idempotent_registration_returns_same_metric(self):
        registry = Registry()
        a = registry.counter("ostro_x_total")
        b = registry.counter("ostro_x_total")
        assert a is b
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = Registry()
        registry.counter("ostro_x_total")
        with pytest.raises(TelemetryError):
            registry.gauge("ostro_x_total")

    def test_label_conflict_raises(self):
        registry = Registry()
        registry.counter("ostro_x_total", labelnames=("a",))
        with pytest.raises(TelemetryError):
            registry.counter("ostro_x_total", labelnames=("b",))

    def test_collect_is_name_ordered(self):
        registry = Registry()
        registry.counter("ostro_b_total")
        registry.counter("ostro_a_total")
        assert [m.name for m in registry.collect()] == [
            "ostro_a_total",
            "ostro_b_total",
        ]


class TestPrometheusRendering:
    def test_help_type_and_samples(self):
        registry = Registry()
        c = registry.counter(
            "ostro_x_total", "Things counted.", labelnames=("kind",)
        )
        c.inc(3, kind="move")
        text = render_prometheus(registry)
        assert "# HELP ostro_x_total Things counted." in text
        assert "# TYPE ostro_x_total counter" in text
        assert 'ostro_x_total{kind="move"} 3' in text

    def test_histogram_exposition(self):
        registry = Registry()
        h = registry.histogram("ostro_x_seconds", buckets=(0.5, 1.0))
        h.observe(0.25)
        h.observe(2.0)
        text = render_prometheus(registry)
        assert 'ostro_x_seconds_bucket{le="0.5"} 1' in text
        assert 'ostro_x_seconds_bucket{le="1"} 1' in text
        assert 'ostro_x_seconds_bucket{le="+Inf"} 2' in text
        assert "ostro_x_seconds_sum 2.25" in text
        assert "ostro_x_seconds_count 2" in text

    def test_label_values_escaped(self):
        registry = Registry()
        c = registry.counter("ostro_x_total", labelnames=("app",))
        c.inc(app='we"ird\\app\nname')
        text = render_prometheus(registry)
        assert '{app="we\\"ird\\\\app\\nname"}' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(Registry()) == ""
