"""Telemetry tests share one invariant: never leak an enabled recorder."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_recorder():
    yield
    obs.disable()
