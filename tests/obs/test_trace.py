"""Span nesting, close callbacks, and tree rendering."""

from __future__ import annotations

import pytest

from repro.obs import Tracer, render_tree
from repro.obs.trace import NULL_SPAN


class TestNesting:
    def test_spans_nest_under_the_active_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner1"):
                pass
            with tracer.span("inner2"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner1", "inner2"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_durations_and_walk_depths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        assert outer.duration_s is not None and outer.duration_s >= 0
        inner = outer.children[0]
        assert inner.duration_s <= outer.duration_s
        assert [(s.name, d) for s, d in outer.walk()] == [
            ("outer", 0),
            ("inner", 1),
        ]

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        span = tracer.roots[0]
        assert span.attrs["error"] == "ValueError"
        assert span.duration_s is not None
        assert tracer.depth == 0  # stack unwound despite the raise


class TestOnClose:
    def test_callback_fires_with_remaining_depth(self):
        closed = []
        tracer = Tracer(on_close=lambda s, d: closed.append((s.name, d)))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # children close first, at their nesting depth
        assert closed == [("inner", 1), ("outer", 0)]


class TestNullSpan:
    def test_null_span_is_a_shared_noop(self):
        with NULL_SPAN as inner:
            assert inner is None
        # exceptions still propagate through it
        with pytest.raises(RuntimeError):
            with NULL_SPAN:
                raise RuntimeError


class TestRenderTree:
    def test_renders_names_durations_and_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", app="shop"):
            with tracer.span("inner"):
                pass
        text = render_tree(tracer.roots)
        lines = text.splitlines()
        assert lines[0].startswith("outer (")
        assert "app=shop" in lines[0]
        assert lines[1].startswith("  inner (")
