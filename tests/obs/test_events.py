"""Typed event stream: schema enforcement and JSONL round-trip."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import EVENT_SCHEMA, EventLog, TelemetryError, validate_event


class TestEmit:
    def test_emit_records_envelope_and_fields(self):
        log = EventLog()
        log.emit("node_placed", node="web0", host="h1", level="rack")
        log.emit("path_pruned", depth=3, reason="bound")
        assert log.count() == 2
        assert log.count("node_placed") == 1
        first, second = log.events
        assert first.seq == 1 and second.seq == 2
        assert first.fields["node"] == "web0"
        assert second.ts >= first.ts

    def test_unknown_type_raises(self):
        with pytest.raises(TelemetryError):
            EventLog().emit("made_up_event")

    def test_missing_required_field_raises(self):
        with pytest.raises(TelemetryError) as err:
            EventLog().emit("path_pruned", depth=3)  # no reason
        assert "reason" in str(err.value)

    def test_extra_fields_allowed(self):
        log = EventLog()
        log.emit(
            "path_pruned", depth=3, reason="bound", evaluation=812.5
        )
        assert log.events[0].fields["evaluation"] == 812.5

    def test_cap_drops_and_counts(self):
        log = EventLog(max_events=2)
        for _ in range(5):
            log.emit("remove", app="a")
        assert log.count() == 2
        assert log.dropped == 3
        log.clear()
        assert log.count() == 0 and log.dropped == 0


class TestJsonlRoundTrip:
    def test_write_then_read_validates_every_type(self):
        log = EventLog()
        log.emit("placement_started", app="shop", algorithm="eg", nodes=6, links=8)
        log.emit("node_placed", node="web0", host="h1", level="rack")
        log.emit("estimate_computed", node="db0", remaining=3,
                 est_bw_mbps=400.0, est_hosts=2, seconds=0.0001)
        log.emit("path_pruned", depth=2, reason="probabilistic")
        log.emit("deadline_tick", elapsed_s=0.1, remaining_s=0.4,
                 pruning_range=0.2, pops=17)
        sink = io.StringIO()
        assert log.write_jsonl(sink) == 5

        decoded = EventLog.read_jsonl(sink.getvalue().splitlines())
        assert [d["type"] for d in decoded] == [
            "placement_started",
            "node_placed",
            "estimate_computed",
            "path_pruned",
            "deadline_tick",
        ]
        assert [d["seq"] for d in decoded] == [1, 2, 3, 4, 5]
        assert decoded[3]["reason"] == "probabilistic"

    def test_read_skips_blank_lines(self):
        log = EventLog()
        log.emit("remove", app="a")
        sink = io.StringIO()
        log.write_jsonl(sink)
        decoded = EventLog.read_jsonl(["", sink.getvalue().strip(), "   "])
        assert len(decoded) == 1

    def test_read_rejects_corrupted_events(self):
        good = {"type": "remove", "ts": 1.0, "seq": 1, "app": "a"}
        with pytest.raises(TelemetryError):
            EventLog.read_jsonl(
                [json.dumps({**good, "type": "unknown_type"})]
            )
        missing_field = {"type": "remove", "ts": 1.0, "seq": 1}
        with pytest.raises(TelemetryError):
            EventLog.read_jsonl([json.dumps(missing_field)])
        no_envelope = {"type": "remove", "app": "a"}
        with pytest.raises(TelemetryError):
            EventLog.read_jsonl([json.dumps(no_envelope)])


class TestSchema:
    def test_every_type_validates_with_exactly_required_fields(self):
        for etype, required in EVENT_SCHEMA.items():
            obj = {"type": etype, "ts": 0.0, "seq": 1}
            obj.update({name: "x" for name in required})
            validate_event(obj)  # must not raise
