"""Tests for QoS-enhanced Heat template parsing and serialization."""

from __future__ import annotations

import json

import pytest

from repro.datacenter.model import Level
from repro.errors import TemplateError
from repro.heat.template import (
    annotate_template,
    parse_template,
    template_from_topology,
    topology_from_template,
)


@pytest.fixture
def template():
    return {
        "heat_template_version": "2013-05-23",
        "description": "two-tier demo",
        "resources": {
            "web": {
                "type": "OS::Nova::Server",
                "properties": {"flavor": "m1.small"},
            },
            "db": {
                "type": "OS::Nova::Server",
                "properties": {"vcpus": 4, "ram_gb": 8},
            },
            "data": {
                "type": "OS::Cinder::Volume",
                "properties": {"size": 100},
            },
            "web-db": {
                "type": "ATT::QoS::Pipe",
                "properties": {"ends": ["web", "db"], "bandwidth_mbps": 100},
            },
            "db-data": {
                "type": "ATT::QoS::Pipe",
                "properties": {"ends": ["db", "data"], "bandwidth_mbps": 200},
            },
            "ha": {
                "type": "ATT::QoS::DiversityZone",
                "properties": {"level": "rack", "members": ["web", "db"]},
            },
        },
    }


class TestParsing:
    def test_dict_json_and_file_sources(self, template, tmp_path):
        as_json = json.dumps(template)
        path = tmp_path / "stack.json"
        path.write_text(as_json)
        for source in (template, as_json, str(path)):
            assert parse_template(source)["description"] == "two-tier demo"

    def test_invalid_json_raises(self):
        with pytest.raises(TemplateError, match="not valid JSON"):
            parse_template("{broken")

    def test_unsupported_source_type(self):
        with pytest.raises(TemplateError):
            parse_template(42)


class TestTopologyFromTemplate:
    def test_full_roundtrip_structure(self, template):
        topo = topology_from_template(template, name="demo")
        assert topo.name == "demo"
        assert topo.node("web").vcpus == 1  # m1.small
        assert topo.node("db").mem_gb == 8
        assert topo.node("data").size_gb == 100
        assert ("db", 100.0) in topo.neighbors("web")
        (zone,) = topo.zones
        assert zone.level is Level.RACK

    def test_unknown_resource_type(self, template):
        template["resources"]["lb"] = {
            "type": "OS::Neutron::LoadBalancer",
            "properties": {},
        }
        with pytest.raises(TemplateError, match="unsupported type"):
            topology_from_template(template)

    def test_server_without_size_info(self, template):
        template["resources"]["web"]["properties"] = {}
        with pytest.raises(TemplateError, match="flavor or"):
            topology_from_template(template)

    def test_volume_without_size(self, template):
        template["resources"]["data"]["properties"] = {}
        with pytest.raises(TemplateError, match="needs a size"):
            topology_from_template(template)

    def test_pipe_needs_two_ends(self, template):
        template["resources"]["web-db"]["properties"]["ends"] = ["web"]
        with pytest.raises(TemplateError, match="two ends"):
            topology_from_template(template)

    def test_pipe_to_unknown_resource(self, template):
        template["resources"]["web-db"]["properties"]["ends"] = [
            "web",
            "ghost",
        ]
        with pytest.raises(Exception):
            topology_from_template(template)

    def test_empty_template(self):
        with pytest.raises(TemplateError, match="no resources"):
            topology_from_template({"resources": {}})


class TestAnnotate:
    def test_hints_added_for_every_resource(self, template, small_dc):
        from repro.core.greedy import EG

        topo = topology_from_template(template)
        result = EG().place(topo, small_dc)
        annotated = annotate_template(template, result.placement, small_dc)
        web_hints = annotated["resources"]["web"]["properties"][
            "scheduler_hints"
        ]
        assert web_hints["force_host"] == small_dc.hosts[
            result.placement.host_of("web")
        ].name
        data_hints = annotated["resources"]["data"]["properties"][
            "scheduler_hints"
        ]
        assert "force_disk" in data_hints

    def test_original_template_untouched(self, template, small_dc):
        from repro.core.greedy import EG

        topo = topology_from_template(template)
        result = EG().place(topo, small_dc)
        annotate_template(template, result.placement, small_dc)
        assert (
            "scheduler_hints"
            not in template["resources"]["web"]["properties"]
        )

    def test_missing_assignment_raises(self, template, small_dc):
        from repro.core.placement import Placement

        empty = Placement(
            app_name="x",
            assignments={},
            reserved_bw_mbps=0,
            new_active_hosts=0,
            hosts_used=0,
        )
        with pytest.raises(TemplateError, match="does not cover"):
            annotate_template(template, empty, small_dc)


class TestTemplateFromTopology:
    def test_roundtrip(self, template):
        topo = topology_from_template(template)
        regenerated = template_from_topology(topo)
        back = topology_from_template(regenerated)
        assert set(back.nodes) == set(topo.nodes)
        assert back.total_link_bandwidth() == topo.total_link_bandwidth()
        assert {z.name for z in back.zones} == {z.name for z in topo.zones}

    def test_json_serializable(self, template):
        topo = topology_from_template(template)
        json.dumps(template_from_topology(topo))
