"""End-to-end tests of the Fig. 1 pipeline:

template -> wrapper -> Ostro -> annotated template -> Heat engine ->
Nova/Cinder.
"""

from __future__ import annotations

import pytest

from repro.core.scheduler import Ostro
from repro.datacenter.state import DataCenterState
from repro.errors import SchedulerError
from repro.heat.engine import HeatEngine
from repro.heat.template import template_from_topology
from repro.heat.wrapper import OstroHeatWrapper
from repro.workloads.qfs import build_qfs
from tests.conftest import make_three_tier


@pytest.fixture
def template():
    return template_from_topology(make_three_tier(), "three tier stack")


class TestWrapper:
    def test_handle_returns_annotated_template(self, template, small_dc):
        wrapper = OstroHeatWrapper(Ostro(small_dc))
        response = wrapper.handle(template, stack_name="demo", algorithm="eg")
        assert response.stack_name == "demo"
        for res_name, resource in response.annotated_template[
            "resources"
        ].items():
            if resource["type"].startswith("OS::"):
                assert "force_host" in resource["properties"][
                    "scheduler_hints"
                ]

    def test_commit_consumes_ostro_state(self, template, small_dc):
        ostro = Ostro(small_dc)
        wrapper = OstroHeatWrapper(ostro)
        before = sum(ostro.state.free_cpu)
        wrapper.handle(template, stack_name="demo", algorithm="eg")
        assert sum(ostro.state.free_cpu) < before
        assert "demo" in ostro.applications


class TestEngineDeploysOstroDecision:
    def test_deployment_matches_placement(self, template, small_dc):
        ostro = Ostro(small_dc)
        wrapper = OstroHeatWrapper(ostro)
        response = wrapper.handle(template, stack_name="demo", algorithm="eg")
        # deploy on a dedicated state so reservations aren't double-counted
        engine = HeatEngine(DataCenterState(small_dc))
        stack = engine.deploy(response.annotated_template, "demo")
        placement = response.result.placement
        for name in placement.assignments:
            expected = small_dc.hosts[placement.host_of(name)].name
            assert stack.host_of(name) == expected

    def test_qfs_end_to_end(self, testbed):
        ostro = Ostro(testbed)
        template = template_from_topology(build_qfs())
        response = OstroHeatWrapper(ostro).handle(
            template, stack_name="qfs", algorithm="eg"
        )
        engine = HeatEngine(DataCenterState(testbed))
        stack = engine.deploy(response.annotated_template, "qfs")
        assert len(stack.servers) == 14
        assert len(stack.volumes) == 15
        # the 12 chunk volumes ended on 12 distinct hosts (diversity zone)
        chunk_hosts = {
            record.host
            for name, record in stack.volumes.items()
            if name.startswith("chunk-vol")
        }
        assert len(chunk_hosts) == 12

    def test_failed_deploy_rolls_back(self, template, small_dc):
        engine = HeatEngine(DataCenterState(small_dc))
        bad = dict(template)
        bad["resources"] = dict(template["resources"])
        bad["resources"]["monster"] = {
            "type": "OS::Nova::Server",
            "properties": {"vcpus": 1000, "ram_gb": 1000},
        }
        before = engine.state.snapshot()
        with pytest.raises(SchedulerError):
            engine.deploy(bad, "doomed")
        assert engine.state.snapshot() == before
        assert "doomed" not in engine.stacks

    def test_unannotated_template_uses_default_scheduling(
        self, template, small_dc
    ):
        """Without Ostro hints the engine still works -- it just schedules
        each resource independently (the paper's baseline behavior)."""
        engine = HeatEngine(DataCenterState(small_dc))
        stack = engine.deploy(template, "plain")
        assert len(stack.servers) == len(make_three_tier().vms())
