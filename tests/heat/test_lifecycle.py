"""Tests for the full Heat stack lifecycle: create, update, delete."""

from __future__ import annotations

import pytest

from repro.core.scheduler import Ostro
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError, SchedulerError, TemplateError
from repro.heat.engine import HeatEngine
from repro.heat.template import template_from_topology
from repro.heat.wrapper import OstroHeatWrapper
from tests.conftest import make_three_tier


@pytest.fixture
def wrapper(small_dc):
    return OstroHeatWrapper(Ostro(small_dc))


@pytest.fixture
def engine(small_dc):
    return HeatEngine(DataCenterState(small_dc))


class TestWrapperLifecycle:
    def test_update_grows_stack_in_place(self, wrapper):
        topo = make_three_tier()
        wrapper.handle(template_from_topology(topo), "shop", algorithm="eg")
        original = wrapper.ostro.deployed("shop").placement

        grown = topo.copy()
        grown.add_vm("cache", 2, 4)
        grown.connect("cache", "app0", 80)
        response = wrapper.update(
            template_from_topology(grown), "shop", algorithm="eg"
        )
        assert "cache" in response.result.placement.assignments
        for name in topo.nodes:
            assert response.result.placement.host_of(name) == original.host_of(
                name
            )
        hints = response.annotated_template["resources"]["cache"][
            "properties"
        ]["scheduler_hints"]
        assert "force_host" in hints

    def test_delete_releases_everything(self, wrapper):
        pristine = wrapper.ostro.state.snapshot()
        topo = make_three_tier()
        wrapper.handle(template_from_topology(topo), "shop", algorithm="eg")
        wrapper.delete("shop")
        assert wrapper.ostro.state.snapshot() == pristine

    def test_update_unknown_stack(self, wrapper):
        with pytest.raises(PlacementError):
            wrapper.update(
                template_from_topology(make_three_tier()), "ghost"
            )


class TestEngineLifecycle:
    def test_delete_restores_state(self, engine):
        pristine = engine.state.snapshot()
        template = template_from_topology(make_three_tier())
        engine.deploy(template, "s1")
        engine.delete_stack("s1")
        assert engine.state.snapshot() == pristine
        assert "s1" not in engine.stacks

    def test_delete_unknown_stack(self, engine):
        with pytest.raises(TemplateError, match="unknown stack"):
            engine.delete_stack("ghost")

    def test_update_unknown_stack(self, engine):
        template = template_from_topology(make_three_tier())
        with pytest.raises(TemplateError, match="unknown stack"):
            engine.update_stack(template, "ghost")

    def test_duplicate_stack_name_rejected(self, engine):
        template = template_from_topology(make_three_tier())
        engine.deploy(template, "s1")
        with pytest.raises(SchedulerError, match="already exists"):
            engine.deploy(template, "s1")

    def test_update_stack_replaces_resources(self, engine):
        topo = make_three_tier()
        template = template_from_topology(topo)
        engine.deploy(template, "s1")
        grown = topo.copy()
        grown.add_vm("extra", 1, 1)
        stack = engine.update_stack(template_from_topology(grown), "s1")
        assert "extra" in stack.servers
        assert len(engine.stacks) == 1

    def test_failed_update_rolls_back_to_old_stack(self, engine, small_dc):
        topo = make_three_tier()
        template = template_from_topology(topo)
        engine.deploy(template, "s1")
        before = engine.state.snapshot()
        monster = topo.copy()
        monster.add_vm("monster", 1000, 1000)
        with pytest.raises(SchedulerError):
            engine.update_stack(template_from_topology(monster), "s1")
        assert engine.state.snapshot() == before
        assert "s1" in engine.stacks
        assert "web0" in engine.stacks["s1"].servers


class TestUnexpectedErrorRollback:
    """Non-library exceptions mid-transaction must also restore state.

    The ``except ReproError`` handlers cover scheduling failures and
    injected faults; a RuntimeError escaping a surrogate API call is not
    an admission verdict and must not leak half-applied capacity
    (OST009's exception-path condition)."""

    def _wedge_after(self, monkeypatch, owner, method, n):
        real = getattr(owner, method)
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == n:
                raise RuntimeError("surrogate wedged")
            return real(*args, **kwargs)

        monkeypatch.setattr(owner, method, flaky)

    def test_deploy_restores_state(self, engine, monkeypatch):
        pristine = engine.state.snapshot()
        self._wedge_after(monkeypatch, engine.nova, "create_server", 2)
        with pytest.raises(RuntimeError):
            engine.deploy(
                template_from_topology(make_three_tier()), "s1"
            )
        assert engine.state.snapshot() == pristine
        assert "s1" not in engine.stacks

    def test_delete_restores_state_and_stack(self, engine, monkeypatch):
        engine.deploy(template_from_topology(make_three_tier()), "s1")
        deployed = engine.state.snapshot()
        self._wedge_after(monkeypatch, engine.nova, "delete_server", 2)
        with pytest.raises(RuntimeError):
            engine.delete_stack("s1")
        assert engine.state.snapshot() == deployed
        assert "s1" in engine.stacks

    def test_update_restores_state_and_old_stack(
        self, engine, monkeypatch
    ):
        engine.deploy(template_from_topology(make_three_tier()), "s1")
        old = engine.stacks["s1"]
        deployed = engine.state.snapshot()
        self._wedge_after(monkeypatch, engine.nova, "create_server", 2)
        with pytest.raises(RuntimeError):
            engine.update_stack(
                template_from_topology(make_three_tier()), "s1"
            )
        assert engine.state.snapshot() == deployed
        assert engine.stacks["s1"] is old
