"""Planner behavior: triggers, budgets, margins, read-only planning."""

from __future__ import annotations

from repro.core.scheduler import Ostro
from repro.datacenter.builder import build_datacenter
from repro.defrag import DefragConfig, DefragPlanner
from repro.workloads.multitier import build_multitier

#: the canned knobs the CI smoke uses: a whole 10-VM application must
#: fit in one pass, so the budget is 16 rather than the default 8
CFG = DefragConfig(algorithm="eg", max_moves_per_pass=16)


def consolidated_ostro() -> Ostro:
    """One freshly deployed (hence consolidated) application."""
    ostro = Ostro(build_datacenter(num_racks=2, hosts_per_rack=4))
    ostro.place(
        build_multitier(total_vms=10, tiers=5, heterogeneous=True, name="app0"),
        algorithm="eg",
        commit=True,
    )
    return ostro


class TestTriggers:
    def test_disabled_planner_never_runs(self, fragmented_ostro):
        planner = DefragPlanner(DefragConfig(enabled=False, algorithm="eg"))
        assert not any(planner.should_run(fragmented_ostro) for _ in range(5))

    def test_cadence_spaces_passes(self, fragmented_ostro):
        planner = DefragPlanner(DefragConfig(algorithm="eg", cadence=3))
        fired = [planner.should_run(fragmented_ostro) for _ in range(6)]
        assert fired == [True, False, False, True, False, False]

    def test_threshold_gates_on_fragmentation(self, fragmented_ostro):
        idle = DefragPlanner(DefragConfig(algorithm="eg", frag_threshold=0.9))
        eager = DefragPlanner(DefragConfig(algorithm="eg", frag_threshold=0.0))
        assert not idle.should_run(fragmented_ostro)
        assert eager.should_run(fragmented_ostro)


class TestPlanPass:
    def test_consolidates_the_scattered_app(self, fragmented_ostro):
        plan = DefragPlanner(CFG).plan_pass(fragmented_ostro)
        assert [m.app_name for m in plan.migrations] == ["app0"]
        migration = plan.migrations[0]
        assert migration.gain > 0
        assert migration.moved_gb > 0
        assert migration.move_cost > 0
        old_hosts = {
            a.host for a in migration.old_placement.assignments.values()
        }
        new_hosts = {
            a.host for a in migration.new_placement.assignments.values()
        }
        assert len(new_hosts) < len(old_hosts)

    def test_planning_is_read_only(self, fragmented_ostro):
        before = fragmented_ostro.state.snapshot()
        DefragPlanner(CFG).plan_pass(fragmented_ostro)
        assert fragmented_ostro.state.snapshot() == before
        assert fragmented_ostro.verify_state() == []

    def test_nothing_beneficial_on_a_consolidated_state(self):
        # like-for-like scoring: re-deriving the same placement gains
        # exactly 0, so a fresh deployment produces zero migrations
        plan = DefragPlanner(CFG).plan_pass(consolidated_ostro())
        assert plan.migrations == []
        assert not plan.aborted

    def test_move_budget_rejects_oversized_plans(self, fragmented_ostro):
        tight = DefragPlanner(
            DefragConfig(algorithm="eg", max_moves_per_pass=4)
        )
        assert tight.plan_pass(fragmented_ostro).migrations == []
        plan = DefragPlanner(CFG).plan_pass(fragmented_ostro)
        assert 0 < plan.moves <= CFG.max_moves_per_pass

    def test_margin_rejects_thin_gains(self, fragmented_ostro):
        picky = DefragPlanner(
            DefragConfig(
                algorithm="eg", max_moves_per_pass=16, margin=100.0
            )
        )
        assert picky.plan_pass(fragmented_ostro).migrations == []

    def test_apps_on_down_hosts_are_not_candidates(self, fragmented_ostro):
        occupied = sorted(
            {
                a.host
                for a in fragmented_ostro.applications[
                    "app0"
                ].placement.assignments.values()
            }
        )
        fragmented_ostro.state.fail_host(occupied[0])
        # crashed hosts belong to evacuation, not background optimization
        plan = DefragPlanner(CFG).plan_pass(fragmented_ostro)
        assert plan.migrations == []

    def test_deadline_aborts_the_pass_not_the_fleet(self, fragmented_ostro):
        planner = DefragPlanner(
            DefragConfig(
                algorithm="dba*", max_moves_per_pass=16, deadline_s=0.0
            )
        )
        before = fragmented_ostro.state.snapshot()
        plan = planner.plan_pass(fragmented_ostro)
        assert plan.aborted
        assert fragmented_ostro.state.snapshot() == before
        assert fragmented_ostro.verify_state() == []
