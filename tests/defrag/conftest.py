"""Shared fixtures: a deterministically fragmented scheduler.

The canonical way real fleets fragment is crash -> evacuate -> repair:
the evacuation scatters the survivors into whatever slivers of capacity
exist, and the repaired host comes back empty. The fixture reproduces
that sequence exactly, with filler tenants pinning down where the
slivers are, so every test starts from the same scattered placement.
"""

from __future__ import annotations

import pytest

from repro.core.online import evacuate_host
from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_datacenter
from repro.workloads.multitier import build_multitier


def make_fragmented_ostro() -> Ostro:
    """Crash/evacuate/repair one application into a cross-rack scatter.

    A 10-VM multi-tier application lands consolidated on the first hosts
    of rack 1 (2 racks x 4 hosts, 16 cores / 32 GB each). Near-host-sized
    fillers then occupy every other host, the application's first host is
    crashed and evacuated -- forced into the 3-core slivers the fillers
    left -- and finally the host is repaired and the fillers depart. The
    result: the application straddles four hosts across both racks of an
    otherwise almost-empty data center (exactly what a defragmenter
    exists to undo), and ``verify_state()`` is clean.
    """
    cloud = build_datacenter(num_racks=2, hosts_per_rack=4)
    ostro = Ostro(cloud)
    topology = build_multitier(
        total_vms=10, tiers=5, heterogeneous=True, name="app0"
    )
    ostro.place(topology, algorithm="eg", commit=True)
    app_hosts = sorted(
        {
            a.host
            for a in ostro.applications["app0"].placement.assignments.values()
        }
    )
    fillers = []
    for i in range(6):
        filler = ApplicationTopology(f"filler{i}")
        filler.add_vm("big", vcpus=13, mem_gb=26)
        ostro.place(filler, algorithm="eg", commit=True)
        fillers.append(filler.name)
    victim = app_hosts[0]
    ostro.state.fail_host(victim)
    evacuate_host(ostro, victim, algorithm="eg")
    ostro.state.restore_host(victim)
    for name in fillers:
        ostro.remove(name)
    assert ostro.verify_state() == []
    return ostro


@pytest.fixture
def fragmented_ostro() -> Ostro:
    return make_fragmented_ostro()
