"""Fault-mid-migration suite: every abort restores the in-flight step
bit-exactly and leaves zero conservation violations.

The fixture's planner output is a single 10-step whole-application
migration, so the failing step index can be swept across the entire
plan: permanent API faults (rolled back via snapshot/restore), source-
and target-host crashes (refused before any capacity is touched), and
transient faults (retried to completion under a policy).
"""

from __future__ import annotations

import pytest

from repro.core.validate import conservation_violations
from repro.defrag import (
    DefragConfig,
    DefragExecutor,
    DefragPlanner,
    DefragStats,
    run_defrag_tick,
)
from repro.errors import TransientAPIError
from repro.faults import RetryPolicy
from tests.faults.test_rollback import ScriptedInjector

CFG = DefragConfig(algorithm="eg", max_moves_per_pass=16)

#: the fixture's single accepted migration moves the whole 10-VM app
N_STEPS = 10


def plan_for(ostro):
    plan = DefragPlanner(CFG).plan_pass(ostro)
    assert len(plan.migrations) == 1
    assert len(plan.migrations[0].plan.steps) == N_STEPS
    return plan


class TestApiFaultMidPlan:
    @pytest.mark.parametrize("fail_at", range(1, N_STEPS + 1))
    def test_permanent_fault_rolls_back_the_in_flight_step(
        self, fragmented_ostro, fail_at
    ):
        """Each migration step is exactly one gated surrogate API call,
        so failing call ``k`` aborts step index ``k - 1``; the state must
        come back bit-identical to the snapshot taken just before it."""
        ostro = fragmented_ostro
        plan = plan_for(ostro)
        ostro.injector = ScriptedInjector([fail_at])
        snapshots = {}

        def hook(app, index, step):
            snapshots[index] = ostro.state.snapshot()

        stats = DefragStats()
        executor = DefragExecutor(ostro, CFG, step_hook=hook)
        assert not executor.execute(plan, stats)
        assert ostro.state.snapshot() == snapshots[fail_at - 1]
        assert stats.moves + stats.bounces == fail_at - 1
        # the recorded placement tracks the executed prefix exactly, so
        # the leak audit passes at the intermediate configuration too
        assert conservation_violations(ostro) == []
        assert ostro.verify_state() == []

    def test_transient_faults_are_retried_to_completion(
        self, fragmented_ostro
    ):
        ostro = fragmented_ostro
        plan = plan_for(ostro)
        injector = ScriptedInjector([2, 3], error=TransientAPIError)
        ostro.injector = injector
        ostro.retry_policy = RetryPolicy(max_attempts=3)
        stats = DefragStats()
        assert DefragExecutor(ostro, CFG).execute(plan, stats)
        assert stats.moves + stats.bounces == N_STEPS
        assert injector.calls > N_STEPS  # retries happened
        assert ostro.verify_state() == []


class TestHostCrashMidPlan:
    @pytest.mark.parametrize("endpoint", ["source", "target"])
    @pytest.mark.parametrize("fail_at", [0, 4, N_STEPS - 1])
    def test_crash_aborts_before_any_mutation(
        self, fragmented_ostro, endpoint, fail_at
    ):
        """A source/target host crashing mid-plan aborts the pass before
        the in-flight step touches any capacity: after repairing the
        host (fail/restore is a bit-exact no-op) the state equals the
        snapshot taken just before the crash."""
        ostro = fragmented_ostro
        plan = plan_for(ostro)
        crashed = []
        captured = {}

        def hook(app, index, step):
            if index == fail_at and not crashed:
                if endpoint == "source":
                    host = (
                        ostro.applications[app]
                        .placement.assignments[step.node]
                        .host
                    )
                else:
                    host = step.to_host
                captured["snapshot"] = ostro.state.snapshot()
                ostro.state.fail_host(host)
                crashed.append(host)

        stats = DefragStats()
        executor = DefragExecutor(ostro, CFG, step_hook=hook)
        assert not executor.execute(plan, stats)
        assert stats.moves + stats.bounces == fail_at
        ostro.state.restore_host(crashed[0])
        assert ostro.state.snapshot() == captured["snapshot"]
        assert conservation_violations(ostro) == []
        assert ostro.verify_state() == []


class TestStalePlan:
    def test_departed_app_aborts_with_state_untouched(
        self, fragmented_ostro
    ):
        ostro = fragmented_ostro
        plan = plan_for(ostro)
        ostro.remove("app0")
        before = ostro.state.snapshot()
        stats = DefragStats()
        assert not DefragExecutor(ostro, CFG).execute(plan, stats)
        assert ostro.state.snapshot() == before
        assert stats.moves + stats.bounces == 0


class TestDefragTick:
    def test_completed_tick_recovers_fragmentation(self, fragmented_ostro):
        ostro = fragmented_ostro
        planner = DefragPlanner(CFG)
        executor = DefragExecutor(ostro, CFG)
        stats = DefragStats()
        run_defrag_tick(ostro, planner, executor, stats)
        assert stats.passes == 1
        assert stats.frag_recovered > 0
        assert stats.moves + stats.bounces > 0
        assert stats.move_seconds == pytest.approx(
            stats.moved_gb * CFG.move_seconds_per_gb
        )
        assert ostro.verify_state() == []

    def test_fault_triggers_a_replan_that_completes(self, fragmented_ostro):
        ostro = fragmented_ostro
        planner = DefragPlanner(CFG)
        frag_before = planner.fragmentation(ostro)
        ostro.injector = ScriptedInjector([3])  # permanent, first pass
        executor = DefragExecutor(ostro, CFG)
        stats = DefragStats()
        run_defrag_tick(ostro, planner, executor, stats)
        assert stats.aborted_passes >= 1
        assert stats.replans >= 1
        assert ostro.verify_state() == []
        assert planner.fragmentation(ostro) < frag_before

    def test_disabled_tick_is_a_no_op(self, fragmented_ostro):
        cfg = DefragConfig(enabled=False, algorithm="eg")
        stats = DefragStats()
        before = fragmented_ostro.state.snapshot()
        run_defrag_tick(
            fragmented_ostro,
            DefragPlanner(cfg),
            DefragExecutor(fragmented_ostro, cfg),
            stats,
        )
        assert fragmented_ostro.state.snapshot() == before
        assert stats == DefragStats()
