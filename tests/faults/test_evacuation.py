"""Host-failure evacuation tests (repro.core.online.evacuate_host)."""

from __future__ import annotations

import pytest

from repro.core.online import evacuate_host
from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.core.validate import placement_violations
from repro.datacenter.builder import build_datacenter
from repro.datacenter.model import Level
from repro.datacenter.state import DataCenterState
from tests.conftest import make_three_tier


def crashed_clone(cloud, host_index):
    """A pristine state with only the crash applied (validation base)."""
    state = DataCenterState(cloud)
    state.fail_host(host_index)
    return state


class TestEvacuateHost:
    def test_victims_leave_the_down_host(self, small_dc):
        ostro = Ostro(small_dc)
        topo = make_three_tier()
        ostro.place(topo, algorithm="eg", commit=True)
        victim_host = ostro.deployed("three-tier").placement.host_of("db0")
        ostro.state.fail_host(victim_host)

        report = evacuate_host(ostro, victim_host, algorithm="eg")
        assert report.apps == ["three-tier"]
        assert report.failed == []
        placement = ostro.deployed("three-tier").placement
        hosts_used = {a.host for a in placement.assignments.values()}
        assert victim_host not in hosts_used
        assert ostro.verify_state() == []

    def test_replacement_passes_independent_validation(self, small_dc):
        """The evacuated placement satisfies every Section II-B constraint
        -- capacity, bandwidth, and the db anti-affinity zone -- against
        a fresh state that knows only about the crash."""
        ostro = Ostro(small_dc)
        topo = make_three_tier()
        ostro.place(topo, algorithm="eg", commit=True)
        victim_host = ostro.deployed("three-tier").placement.host_of("db1")
        ostro.state.fail_host(victim_host)
        evacuate_host(ostro, victim_host, algorithm="eg")

        placement = ostro.deployed("three-tier").placement
        violations = placement_violations(
            topo, small_dc, crashed_clone(small_dc, victim_host), placement
        )
        assert violations == []
        # anti-affinity explicitly: the db zone still spans two hosts
        assert placement.host_of("db0") != placement.host_of("db1")

    def test_host_accepted_by_name(self, small_dc):
        ostro = Ostro(small_dc)
        ostro.place(make_three_tier(), algorithm="eg", commit=True)
        victim_host = ostro.deployed("three-tier").placement.host_of("web0")
        ostro.state.fail_host(victim_host)
        report = evacuate_host(
            ostro, small_dc.hosts[victim_host].name, algorithm="eg"
        )
        assert report.host == small_dc.hosts[victim_host].name

    def test_multiple_apps_are_all_evacuated(self, small_dc):
        ostro = Ostro(small_dc)
        first = make_three_tier()
        second = make_three_tier()
        second.name = "second"
        ostro.place(first, algorithm="eg", commit=True)
        ostro.place(second, algorithm="eg", commit=True)
        # both EG placements pack the same hosts; crash db0's host
        victim_host = ostro.deployed("three-tier").placement.host_of("db0")
        ostro.state.fail_host(victim_host)
        report = evacuate_host(ostro, victim_host, algorithm="eg")
        assert set(report.apps) <= {"three-tier", "second"}
        for app_name in ostro.applications:
            placement = ostro.applications[app_name].placement
            assert victim_host not in {
                a.host for a in placement.assignments.values()
            }
        assert ostro.verify_state() == []

    def test_unaffected_host_evacuates_nothing(self, small_dc):
        ostro = Ostro(small_dc)
        ostro.place(make_three_tier(), algorithm="eg", commit=True)
        used = {
            a.host
            for a in ostro.deployed("three-tier").placement
            .assignments.values()
        }
        idle = next(i for i in range(len(small_dc.hosts)) if i not in used)
        ostro.state.fail_host(idle)
        report = evacuate_host(ostro, idle, algorithm="eg")
        assert report.apps == []
        assert report.moved == []

    def test_infeasible_evacuation_releases_the_app(self):
        """When victims fit nowhere, the app is removed whole -- capacity
        conserved -- instead of being left half-committed."""
        cloud = build_datacenter(num_racks=1, hosts_per_rack=2)
        ostro = Ostro(cloud)
        topo = ApplicationTopology("pair")
        topo.add_vm("a", vcpus=10, mem_gb=4)
        topo.add_vm("b", vcpus=10, mem_gb=4)
        topo.add_zone("spread", Level.HOST, ["a", "b"])
        ostro.place(topo, algorithm="eg", commit=True)
        victim_host = ostro.deployed("pair").placement.host_of("a")
        ostro.state.fail_host(victim_host)

        report = evacuate_host(ostro, victim_host, algorithm="eg")
        assert report.failed == ["pair/a"]
        assert "pair" not in ostro.applications
        assert ostro.verify_state() == []

    def test_evacuating_a_live_host_is_rejected_by_search(self, small_dc):
        """Evacuation of a host that is *not* down re-places onto it --
        the caller must fail the host first; this documents why."""
        ostro = Ostro(small_dc)
        ostro.place(make_three_tier(), algorithm="eg", commit=True)
        victim_host = ostro.deployed("three-tier").placement.host_of("web0")
        report = evacuate_host(ostro, victim_host, algorithm="eg")
        # nothing guarantees the victims moved: the host is still the
        # cheapest feasible location
        assert report.apps == ["three-tier"]
        assert ostro.verify_state() == []


class TestDegradedEvacuation:
    def test_zero_deadline_degrades_instead_of_failing(self, small_dc):
        ostro = Ostro(small_dc)
        ostro.place(make_three_tier(), algorithm="eg", commit=True)
        victim_host = ostro.deployed("three-tier").placement.host_of("db0")
        ostro.state.fail_host(victim_host)
        report = evacuate_host(
            ostro, victim_host, algorithm="dba*", deadline_s=0.0
        )
        assert report.failed == []
        assert report.algorithms["three-tier"] in ("ba*", "eg")
        assert ostro.verify_state() == []
