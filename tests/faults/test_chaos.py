"""End-to-end chaos scenario tests (repro.sim.chaos)."""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.cli import main as cli_main
from repro.datacenter.builder import build_datacenter
from repro.defrag import DefragConfig
from repro.errors import DataCenterError
from repro.faults import FaultEvent, FaultPlan
from repro.sim.chaos import run_chaos
from repro.sim.scenarios import make_fault_plan


@pytest.fixture
def tiny_cloud():
    return build_datacenter(num_racks=2, hosts_per_rack=8)


class TestMakeFaultPlan:
    def test_same_seed_same_plan(self, tiny_cloud):
        a = make_fault_plan(tiny_cloud, seed=5, hosts=3, links=1)
        b = make_fault_plan(tiny_cloud, seed=5, hosts=3, links=1)
        c = make_fault_plan(tiny_cloud, seed=6, hosts=3, links=1)
        assert a.events == b.events
        assert a.events != c.events

    def test_recovery_events_follow_failures(self, tiny_cloud):
        plan = make_fault_plan(
            tiny_cloud, seed=0, hosts=2, links=1, recover_after_steps=2
        )
        downs = [e for e in plan.events if e.kind.endswith("_down")]
        ups = [e for e in plan.events if e.kind.endswith("_up")]
        assert len(downs) == 3 and len(ups) == 3
        by_target = {e.target: e.at_step for e in downs}
        for up in ups:
            assert up.at_step == by_target[up.target] + 2

    def test_victim_counts_validated(self, tiny_cloud):
        with pytest.raises(DataCenterError, match="hosts"):
            make_fault_plan(tiny_cloud, hosts=1000)
        with pytest.raises(DataCenterError, match="uplinks"):
            make_fault_plan(tiny_cloud, links=1000)


class TestRunChaos:
    def test_same_seed_runs_are_bit_identical(self, tiny_cloud):
        def one_run():
            plan = make_fault_plan(
                tiny_cloud,
                seed=2,
                hosts=3,
                links=1,
                api_transient_rate=0.2,
                steps=5,
            )
            return run_chaos(
                plan,
                cloud=build_datacenter(num_racks=2, hosts_per_rack=8),
                apps=5,
                app_vms=8,
                algorithm="eg",
            )

        first, second = one_run(), one_run()
        assert first.fingerprint == second.fingerprint
        # recovery_s is scheduler wall-clock; everything else is exact
        a, b = asdict(first), asdict(second)
        a.pop("recovery_s"), b.pop("recovery_s")
        assert a == b

    def test_chaos_run_leaks_no_capacity(self, tiny_cloud):
        plan = make_fault_plan(
            tiny_cloud,
            seed=0,
            hosts=4,
            links=1,
            api_transient_rate=0.3,
            steps=6,
            recover_after_steps=2,
        )
        report = run_chaos(
            plan, cloud=tiny_cloud, apps=6, app_vms=8, algorithm="eg"
        )
        assert report.invariant_violations == []
        assert report.hosts_failed == 4
        assert report.links_failed == 1
        assert report.apps_requested == 6
        assert 0.0 <= report.availability <= 1.0

    def test_quiet_plan_is_a_plain_deployment(self, tiny_cloud):
        plan = make_fault_plan(tiny_cloud, seed=0)
        report = run_chaos(
            plan, cloud=tiny_cloud, apps=3, app_vms=6, algorithm="eg"
        )
        assert report.apps_deployed == 3
        assert report.availability == 1.0
        assert report.evacuations == 0
        assert report.api_faults == 0
        assert report.degradations == 0
        assert report.invariant_violations == []

    def test_degradation_ladder_engages_under_chaos(self, tiny_cloud):
        plan = make_fault_plan(tiny_cloud, seed=0, hosts=1)
        report = run_chaos(
            plan,
            cloud=tiny_cloud,
            apps=3,
            app_vms=6,
            algorithm="dba*",
            deadline_s=0.0,  # DBA* unusable; every placement degrades
        )
        assert report.degradations >= 3
        assert report.apps_deployed == 3
        assert report.invariant_violations == []

    def test_summary_lines_cover_the_headline_metrics(self, tiny_cloud):
        report = run_chaos(
            make_fault_plan(tiny_cloud, seed=0, hosts=1),
            cloud=tiny_cloud,
            apps=2,
            app_vms=6,
            algorithm="eg",
        )
        text = "\n".join(report.summary_lines())
        for needle in ("availability", "fingerprint", "capacity leaks"):
            assert needle in text


class TestTrailingEvents:
    def test_late_crash_is_evacuated_before_its_repair(self, tiny_cloud):
        """Regression: a crash scheduled after the last arrival must go
        through the same per-step handler as mid-run ones -- evacuated
        and audited *before* the later repair of the same host fires."""
        victim = tiny_cloud.hosts[0].name  # eg packs the apps here
        plan = FaultPlan(
            seed=0,
            events=[
                FaultEvent(at_step=4, kind="host_down", target=victim),
                FaultEvent(at_step=6, kind="host_up", target=victim),
            ],
        )
        report = run_chaos(
            plan, cloud=tiny_cloud, apps=2, app_vms=6, algorithm="eg"
        )
        assert report.apps_deployed == 2
        assert report.hosts_failed == 1
        assert report.evacuations == 1
        assert report.nodes_moved > 0  # the host held tenants when it died
        assert report.invariant_violations == []


class TestChaosDefrag:
    def test_defrag_recovers_fragmentation_leak_free(self):
        from repro.bench import defrag_case_config, defrag_chaos_case

        report = run_chaos(defrag=defrag_case_config(), **defrag_chaos_case())
        assert report.defrag_enabled
        assert report.defrag_passes >= 1
        assert report.frag_recovered > 0
        assert report.invariant_violations == []

    def test_disabled_defrag_is_bit_identical_to_none(self, tiny_cloud):
        def one_run(defrag):
            plan = make_fault_plan(
                tiny_cloud, seed=3, hosts=2, steps=4, recover_after_steps=1
            )
            return run_chaos(
                plan,
                cloud=tiny_cloud,
                apps=4,
                app_vms=6,
                algorithm="eg",
                defrag=defrag,
            )

        baseline = one_run(None)
        disabled = one_run(DefragConfig(enabled=False, algorithm="eg"))
        assert disabled.fingerprint == baseline.fingerprint
        assert not disabled.defrag_enabled
        assert not baseline.defrag_enabled


class TestChaosScaling:
    def scaled_run(self, cloud, scaling):
        plan = make_fault_plan(
            cloud, seed=2, hosts=2, links=1, steps=6, recover_after_steps=2
        )
        return run_chaos(
            plan,
            cloud=cloud,
            apps=4,
            app_vms=6,
            algorithm="eg",
            scaling=scaling,
        )

    def test_scaling_under_chaos_is_deterministic_and_clean(
        self, tiny_cloud
    ):
        from repro.scaling import ScalingConfig

        config = ScalingConfig(
            tier_prefix="tier1",
            scale_out_at=0.65,
            scale_in_at=0.45,
            step_fraction=0.5,
            seed=3,
            consolidate=True,
        )
        a = self.scaled_run(tiny_cloud, config)
        b = self.scaled_run(tiny_cloud, config)
        assert a.fingerprint == b.fingerprint
        assert a.scaling_enabled
        assert a.scale_evaluations > 0
        assert a.scale_outs > 0 and a.scale_ins > 0
        assert a.invariant_violations == []

    def test_disabled_scaling_is_bit_identical_to_none(self, tiny_cloud):
        from repro.scaling import ScalingConfig

        baseline = self.scaled_run(tiny_cloud, None)
        disabled = self.scaled_run(
            tiny_cloud, ScalingConfig(enabled=False)
        )
        assert disabled.fingerprint == baseline.fingerprint
        assert not disabled.scaling_enabled
        assert disabled.scale_evaluations == 0


class TestChaosCLI:
    def test_experiment_chaos_exits_clean(self, capsys):
        rc = cli_main(
            [
                "experiment",
                "chaos",
                "--dc",
                "dc:2",
                "--apps",
                "3",
                "--app-vms",
                "6",
                "--algorithm",
                "eg",
                "--faults",
                "hosts=2,links=1,api=0.1,recover=2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "availability" in out
        assert "fingerprint" in out

    def test_defrag_flag_reports_defrag_summary(self, capsys):
        rc = cli_main(
            [
                "experiment",
                "chaos",
                "--dc",
                "dc:2",
                "--apps",
                "6",
                "--app-vms",
                "10",
                "--algorithm",
                "eg",
                "--defrag",
                "--defrag-moves",
                "16",
                "--faults",
                "hosts=3,recover=2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "defrag" in out

    def test_bad_fault_spec_is_a_clean_error(self, capsys):
        rc = cli_main(
            ["experiment", "chaos", "--faults", "meteors=7", "--dc", "dc:2"]
        )
        assert rc == 1
        assert "fault spec" in capsys.readouterr().err
