"""Tests for the retry/backoff policy (repro.faults.retry)."""

from __future__ import annotations

import pytest

from repro.errors import (
    DataCenterError,
    PermanentAPIError,
    RetryError,
    TransientAPIError,
)
from repro.faults import RetryPolicy, retry_call


class Flaky:
    """Callable that raises the scripted errors, then returns a value."""

    def __init__(self, errors, value="ok"):
        self.errors = list(errors)
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return self.value


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        fn = Flaky([TransientAPIError("t1"), TransientAPIError("t2")])
        policy = RetryPolicy(max_attempts=4)
        assert retry_call(policy, fn) == "ok"
        assert fn.calls == 3

    def test_attempt_exhaustion_raises_chained_retry_error(self):
        fn = Flaky([TransientAPIError(f"t{i}") for i in range(10)])
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(RetryError) as excinfo:
            retry_call(policy, fn, service="nova", method="create_server")
        assert fn.calls == 3
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, TransientAPIError)
        assert "nova.create_server" in str(excinfo.value)

    def test_budget_exhaustion_stops_early(self):
        fn = Flaky([TransientAPIError(f"t{i}") for i in range(10)])
        policy = RetryPolicy(
            max_attempts=10,
            base_delay_s=1.0,
            jitter=0.0,
            timeout_budget_s=2.5,
        )
        # delays 1, 2 fit (total 3 > 2.5 already on the second retry)
        with pytest.raises(RetryError, match="budget"):
            retry_call(policy, fn)
        assert fn.calls < 10

    def test_permanent_error_is_not_retried(self):
        fn = Flaky([PermanentAPIError("dead")])
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(PermanentAPIError):
            retry_call(policy, fn)
        assert fn.calls == 1

    def test_unrelated_errors_propagate(self):
        def boom():
            raise ValueError("not an API fault")

        with pytest.raises(ValueError):
            retry_call(RetryPolicy(), boom)

    def test_virtual_sleep_by_default_and_real_sleep_hook(self):
        slept = []
        fn = Flaky([TransientAPIError("t")])
        policy = RetryPolicy(max_attempts=3, sleep=slept.append)
        retry_call(policy, fn)
        assert len(slept) == 1 and slept[0] > 0.0


class TestRetryPolicy:
    def test_delays_are_exponential_without_jitter(self):
        policy = RetryPolicy(
            base_delay_s=0.1, backoff_factor=2.0, jitter=0.0
        )
        assert [policy.next_delay_s(a) for a in (1, 2, 3)] == pytest.approx(
            [0.1, 0.2, 0.4]
        )

    def test_jitter_is_deterministic_per_seed(self):
        first = RetryPolicy(jitter=0.5, seed=7)
        second = RetryPolicy(jitter=0.5, seed=7)
        other = RetryPolicy(jitter=0.5, seed=8)
        seq_a = [first.next_delay_s(a) for a in range(1, 6)]
        seq_b = [second.next_delay_s(a) for a in range(1, 6)]
        seq_c = [other.next_delay_s(a) for a in range(1, 6)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=1.0, backoff_factor=1.0, jitter=0.5)
        for attempt in range(1, 50):
            assert 0.5 <= policy.next_delay_s(attempt) <= 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(DataCenterError):
            RetryPolicy(**kwargs)
