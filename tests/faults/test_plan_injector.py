"""Tests for fault plans and the injector (repro.faults.{plan,injector})."""

from __future__ import annotations

import pytest

from repro.datacenter.state import DataCenterState
from repro.errors import (
    DataCenterError,
    PermanentAPIError,
    TransientAPIError,
)
from repro.faults import FaultEvent, FaultInjector, FaultPlan


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(DataCenterError, match="unknown fault kind"):
            FaultEvent(at_step=0, kind="meteor_strike", target="h1")

    def test_negative_step_rejected(self):
        with pytest.raises(DataCenterError, match=">= 0"):
            FaultEvent(at_step=-1, kind="host_down", target="h1")


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(DataCenterError, match="api_transient_rate"):
            FaultPlan(api_transient_rate=1.5)
        with pytest.raises(DataCenterError, match="api_permanent_rate"):
            FaultPlan(api_permanent_rate=-0.1)

    def test_events_sorted_and_filtered_by_step(self):
        late = FaultEvent(at_step=5, kind="host_down", target="b")
        early = FaultEvent(at_step=1, kind="host_down", target="a")
        plan = FaultPlan(events=[late, early])
        assert plan.events == [early, late]
        assert plan.events_between(-1, 1) == [early]
        assert plan.events_between(1, 5) == [late]
        assert plan.events_between(5, 100) == []

    def test_draws_are_deterministic_per_seed(self):
        def sequence(plan):
            return [
                type(plan.draw_api_fault("nova", "create_server")).__name__
                for _ in range(50)
            ]

        a = FaultPlan(seed=3, api_transient_rate=0.3, api_permanent_rate=0.1)
        b = FaultPlan(seed=3, api_transient_rate=0.3, api_permanent_rate=0.1)
        c = FaultPlan(seed=4, api_transient_rate=0.3, api_permanent_rate=0.1)
        seq_a, seq_b, seq_c = sequence(a), sequence(b), sequence(c)
        assert seq_a == seq_b
        assert seq_a != seq_c
        assert "TransientAPIError" in seq_a
        assert "PermanentAPIError" in seq_a

    def test_reset_rewinds_the_draw_stream(self):
        plan = FaultPlan(seed=3, api_transient_rate=0.5)
        first = [plan.draw_api_fault("s", "m") for _ in range(20)]
        plan.reset()
        second = [plan.draw_api_fault("s", "m") for _ in range(20)]
        assert [type(f).__name__ for f in first] == [
            type(f).__name__ for f in second
        ]

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=0)
        assert not plan.has_api_faults
        assert all(
            plan.draw_api_fault("s", "m") is None for _ in range(100)
        )


class TestFaultInjector:
    def test_scheduled_events_fire_in_step_order(self, small_dc):
        state = DataCenterState(small_dc)
        h0, h1 = small_dc.hosts[0].name, small_dc.hosts[1].name
        plan = FaultPlan(
            events=[
                FaultEvent(at_step=2, kind="host_down", target=h1),
                FaultEvent(at_step=0, kind="host_down", target=h0),
                FaultEvent(at_step=3, kind="host_up", target=h0),
            ]
        )
        injector = FaultInjector(plan, state)
        assert [e.target for e in injector.advance_to(0)] == [h0]
        assert state.host_is_down(0)
        # idempotent: advancing to the same or an earlier step is a no-op
        assert injector.advance_to(0) == []
        fired = injector.advance_to(10)
        assert [(e.at_step, e.kind) for e in fired] == [
            (2, "host_down"),
            (3, "host_up"),
        ]
        assert not state.host_is_down(0)
        assert state.host_is_down(1)
        assert len(injector.applied) == 3

    def test_link_targets_resolve_by_element_kind(self, podded_cloud):
        state = DataCenterState(podded_cloud)
        host = podded_cloud.hosts[0]
        rack = podded_cloud.racks[0]
        pod = podded_cloud.pods[0]
        plan = FaultPlan(
            events=[
                FaultEvent(0, "link_down", f"host:{host.name}"),
                FaultEvent(0, "link_down", f"rack:{rack.name}"),
                FaultEvent(0, "link_down", f"pod:{pod.name}"),
            ]
        )
        FaultInjector(plan, state).advance_to(0)
        down = set(state.down_links())
        assert {host.link_index, rack.link_index, pod.link_index} == down
        for link in down:
            assert state.free_bw[link] == 0.0

    @pytest.mark.parametrize(
        "target", ["unqualified", "disk:whatever", "rack:nope", "pod:nope"]
    )
    def test_bad_link_targets_raise(self, small_dc, target):
        state = DataCenterState(small_dc)
        plan = FaultPlan(events=[FaultEvent(0, "link_down", target)])
        with pytest.raises(DataCenterError):
            FaultInjector(plan, state).advance_to(0)

    def test_api_faults_raise_and_are_counted(self, small_dc):
        state = DataCenterState(small_dc)
        injector = FaultInjector(
            FaultPlan(seed=1, api_transient_rate=1.0), state
        )
        for _ in range(3):
            with pytest.raises(TransientAPIError):
                injector.before_api_call("nova", "create_server")
        assert injector.api_faults == {"TransientAPIError": 3}

    def test_permanent_faults_identified(self, small_dc):
        state = DataCenterState(small_dc)
        injector = FaultInjector(
            FaultPlan(seed=1, api_permanent_rate=1.0), state
        )
        with pytest.raises(PermanentAPIError):
            injector.before_api_call("cinder", "create_volume")
        assert injector.api_faults == {"PermanentAPIError": 1}

    def test_constructing_injector_resets_plan_stream(self, small_dc):
        plan = FaultPlan(seed=9, api_transient_rate=0.4)

        def run(state):
            injector = FaultInjector(plan, state)
            outcomes = []
            for _ in range(30):
                try:
                    injector.before_api_call("s", "m")
                    outcomes.append("ok")
                except TransientAPIError:
                    outcomes.append("fault")
            return outcomes

        first = run(DataCenterState(small_dc))
        second = run(DataCenterState(small_dc))
        assert first == second
