"""Transactional rollback tests: a failed deploy leaks nothing.

The scripted injector fails the k-th surrogate API call; every test
asserts the state fingerprint (``snapshot()``) after the failed
operation is bit-identical to the fingerprint before it.
"""

from __future__ import annotations

import pytest

from repro.core.scheduler import Ostro
from repro.datacenter.state import DataCenterState
from repro.errors import PermanentAPIError, RetryError, TransientAPIError
from repro.faults import RetryPolicy
from repro.heat.engine import HeatEngine
from repro.heat.template import template_from_topology
from tests.conftest import make_three_tier

#: three-tier = 6 servers + 2 volumes -> 8 create calls per deploy
N_CREATE_CALLS = 8


class ScriptedInjector:
    """Duck-typed injector that fails exactly the scripted call numbers."""

    def __init__(self, fail_calls, error=PermanentAPIError):
        self.fail_calls = set(fail_calls)
        self.error = error
        self.calls = 0

    def before_api_call(self, service, method):
        self.calls += 1
        if self.calls in self.fail_calls:
            raise self.error(
                f"scripted fault on call {self.calls} ({service}.{method})"
            )


class TestDeployRollback:
    @pytest.mark.parametrize("fail_at", range(1, N_CREATE_CALLS + 1))
    def test_mid_stack_failure_restores_state_bit_exactly(
        self, small_dc, fail_at
    ):
        engine = HeatEngine(
            DataCenterState(small_dc),
            injector=ScriptedInjector([fail_at]),
        )
        template = template_from_topology(make_three_tier())
        before = engine.state.snapshot()
        with pytest.raises(PermanentAPIError):
            engine.deploy(template, "s1")
        assert engine.state.snapshot() == before
        assert "s1" not in engine.stacks
        assert engine.state.capacity_invariants() == []
        # the state is fully usable afterwards: the same deploy succeeds
        engine.nova.injector = engine.cinder.injector = None
        stack = engine.deploy(template, "s1")
        assert len(stack.servers) == 6 and len(stack.volumes) == 2

    def test_transient_faults_are_retried_to_success(self, small_dc):
        injector = ScriptedInjector([1, 2], error=TransientAPIError)
        engine = HeatEngine(
            DataCenterState(small_dc),
            injector=injector,
            retry=RetryPolicy(max_attempts=3),
        )
        stack = engine.deploy(
            template_from_topology(make_three_tier()), "s1"
        )
        assert len(stack.servers) == 6
        assert injector.calls > N_CREATE_CALLS  # retries happened

    def test_exhausted_retries_roll_back(self, small_dc):
        injector = ScriptedInjector(range(1, 100), error=TransientAPIError)
        engine = HeatEngine(
            DataCenterState(small_dc),
            injector=injector,
            retry=RetryPolicy(max_attempts=3),
        )
        before = engine.state.snapshot()
        with pytest.raises(RetryError):
            engine.deploy(template_from_topology(make_three_tier()), "s1")
        assert engine.state.snapshot() == before
        assert "s1" not in engine.stacks


class TestUpdateRollback:
    @pytest.mark.parametrize("fail_at", [1, 5, 9, 12, 16])
    def test_failed_update_restores_state_and_old_stack(
        self, small_dc, fail_at
    ):
        """Failure anywhere in delete-then-redeploy rolls the update back.

        An update issues 8 delete calls then 8 create calls; ``fail_at``
        samples both phases.
        """
        engine = HeatEngine(DataCenterState(small_dc))
        topo = make_three_tier()
        engine.deploy(template_from_topology(topo), "s1")
        before = engine.state.snapshot()
        old_servers = dict(engine.stacks["s1"].servers)

        injector = ScriptedInjector([fail_at])
        engine.nova.injector = engine.cinder.injector = injector
        grown = topo.copy()
        grown.add_vm("extra", 1, 1)
        with pytest.raises(PermanentAPIError):
            engine.update_stack(template_from_topology(grown), "s1")
        assert engine.state.snapshot() == before
        assert engine.stacks["s1"].servers == old_servers
        assert engine.state.capacity_invariants() == []


class TestCommitRollback:
    def test_injected_commit_fault_restores_scheduler_state(self, small_dc):
        ostro = Ostro(small_dc, injector=ScriptedInjector([1]))
        pristine = ostro.state.snapshot()
        with pytest.raises(PermanentAPIError):
            ostro.place(make_three_tier(), algorithm="eg", commit=True)
        assert ostro.state.snapshot() == pristine
        assert ostro.applications == {}
        assert ostro.verify_state() == []

    def test_commit_retries_transient_faults(self, small_dc):
        injector = ScriptedInjector([1], error=TransientAPIError)
        ostro = Ostro(
            small_dc,
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        result = ostro.place(make_three_tier(), algorithm="eg", commit=True)
        assert "three-tier" in ostro.applications
        assert result.placement.assignments
        assert ostro.verify_state() == []

    def test_remove_after_faulty_commit_cycle_is_leak_free(self, small_dc):
        injector = ScriptedInjector([1], error=TransientAPIError)
        ostro = Ostro(
            small_dc,
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        pristine = ostro.state.snapshot()
        ostro.place(make_three_tier(), algorithm="eg", commit=True)
        ostro.remove("three-tier")
        assert ostro.state.snapshot() == pristine
        assert ostro.verify_state() == []
