"""Tests for the state's down-element fault model and leak invariants."""

from __future__ import annotations

import pytest

from repro.datacenter.state import DataCenterState
from repro.errors import CapacityError, DataCenterError


class TestHostFailures:
    def test_fail_host_zeroes_all_free_capacity(self, small_state):
        cloud = small_state.cloud
        host = cloud.hosts[0]
        small_state.fail_host(0)
        assert small_state.host_is_down(0)
        assert small_state.free_cpu[0] == 0.0
        assert small_state.free_mem[0] == 0.0
        for disk in host.disks:
            assert small_state.free_disk[disk.index] == 0.0
        assert small_state.free_bw[host.link_index] == 0.0
        assert small_state.down_hosts() == [0]
        assert small_state.capacity_invariants() == []

    def test_effective_free_sees_absorbed_capacity(self, small_state):
        cloud = small_state.cloud
        before_cpu = small_state.free_cpu[0]
        small_state.fail_host(0)
        assert small_state.effective_free_cpu(0) == before_cpu
        assert small_state.effective_free_mem(0) == cloud.hosts[0].mem_gb

    def test_fail_restore_round_trip_is_bit_exact(self, small_state):
        # non-trivial occupancy first
        small_state.place_vm(0, 4, 8)
        small_state.place_volume(0, 100)
        before = small_state.snapshot()
        small_state.fail_host(0)
        assert small_state.snapshot() != before
        small_state.restore_host(0)
        assert small_state.snapshot() == before
        assert small_state.capacity_invariants() == []

    def test_double_fail_and_stray_restore_rejected(self, small_state):
        small_state.fail_host(0)
        with pytest.raises(DataCenterError, match="already down"):
            small_state.fail_host(0)
        with pytest.raises(DataCenterError):
            small_state.restore_host(1)

    def test_placing_on_down_host_raises(self, small_state):
        small_state.fail_host(0)
        with pytest.raises(CapacityError, match="down"):
            small_state.place_vm(0, 1, 1)
        disk = small_state.cloud.hosts[0].disks[0]
        with pytest.raises(CapacityError, match="down"):
            small_state.place_volume(disk.index, 1)

    def test_release_on_down_host_absorbs_then_restores(self, small_state):
        """Capacity released while a host is down comes back on repair."""
        pristine = small_state.snapshot()
        small_state.place_vm(0, 4, 8)
        small_state.fail_host(0)
        # tenant teardown while the host is dead: release absorbs
        small_state.unplace_vm(0, 4, 8)
        assert small_state.free_cpu[0] == 0.0
        assert small_state.capacity_invariants() == []
        small_state.restore_host(0)
        assert small_state.snapshot() == pristine

    def test_nic_comes_back_with_the_host(self, small_state):
        link = small_state.cloud.hosts[0].link_index
        nic_bw = small_state.free_bw[link]
        small_state.fail_host(0)
        assert small_state.free_bw[link] == 0.0
        small_state.restore_host(0)
        assert small_state.free_bw[link] == nic_bw
        assert small_state.down_links() == []

    def test_host_failure_respects_separately_failed_nic(self, small_state):
        """A link failed before the host stays failed after host repair."""
        link = small_state.cloud.hosts[0].link_index
        small_state.fail_link(link)
        small_state.fail_host(0)
        small_state.restore_host(0)
        assert small_state.down_links() == [link]
        small_state.restore_link(link)
        assert small_state.capacity_invariants() == []


class TestLinkFailures:
    def test_fail_link_zeroes_bandwidth(self, small_state):
        link = small_state.cloud.racks[0].link_index
        uplink_bw = small_state.free_bw[link]
        small_state.fail_link(link)
        assert small_state.free_bw[link] == 0.0
        assert small_state.effective_free_bw(link) == uplink_bw
        assert small_state.down_links() == [link]
        small_state.restore_link(link)
        assert small_state.free_bw[link] == uplink_bw

    def test_double_fail_and_stray_restore_rejected(self, small_state):
        link = small_state.cloud.racks[0].link_index
        small_state.fail_link(link)
        with pytest.raises(DataCenterError):
            small_state.fail_link(link)
        with pytest.raises(DataCenterError):
            small_state.restore_link(link + 1)

    def test_release_on_down_link_absorbs(self, small_state):
        host_a = small_state.cloud.hosts[0]
        host_b = small_state.cloud.hosts[1]
        path = [host_a.link_index, host_b.link_index]
        small_state.reserve_path(path, 100)
        small_state.fail_link(host_a.link_index)
        small_state.release_path(path, 100)
        assert small_state.free_bw[host_a.link_index] == 0.0
        nic_nominal = host_b.nic_bw_mbps
        assert small_state.free_bw[host_b.link_index] == nic_nominal
        assert small_state.capacity_invariants() == []
        small_state.restore_link(host_a.link_index)
        assert small_state.free_bw[host_a.link_index] == host_a.nic_bw_mbps


class TestCapacityInvariants:
    def test_clean_state_has_no_violations(self, small_state):
        assert small_state.capacity_invariants() == []

    def test_overfree_cpu_detected(self, small_state):
        small_state.free_cpu[0] += 1000.0
        assert any(
            "cpu" in v for v in small_state.capacity_invariants()
        )

    def test_negative_free_detected(self, small_state):
        small_state.free_mem[1] = -5.0
        assert small_state.capacity_invariants() != []

    def test_down_host_with_live_capacity_detected(self, small_state):
        small_state.fail_host(0)
        small_state.free_cpu[0] = 1.0  # resurrects dead capacity
        assert any(
            "down" in v for v in small_state.capacity_invariants()
        )

    def test_clone_preserves_fault_bookkeeping(self, small_state):
        small_state.fail_host(0)
        small_state.fail_link(small_state.cloud.racks[1].link_index)
        copy = small_state.clone()
        assert copy.down_hosts() == small_state.down_hosts()
        assert copy.down_links() == small_state.down_links()
        copy.restore_host(0)  # independent bookkeeping
        assert small_state.host_is_down(0)
        assert not copy.host_is_down(0)
        assert copy.capacity_invariants() == []
