"""Graceful-degradation ladder tests (repro.faults.recovery)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.scheduler import Ostro
from repro.errors import PlacementError
from repro.faults import DEGRADATION_LADDER, place_with_degradation
from tests.conftest import make_three_tier


@pytest.fixture
def recorder():
    rec = obs.enable()
    yield rec
    obs.disable()


class TestLadder:
    def test_every_rung_terminates_at_eg(self):
        for start in DEGRADATION_LADDER:
            current, hops = start, 0
            while current in DEGRADATION_LADDER:
                current = DEGRADATION_LADDER[current]
                hops += 1
                assert hops <= len(DEGRADATION_LADDER)
            assert current == "eg"


class TestPlaceWithDegradation:
    def test_healthy_run_uses_the_requested_rung(self, small_dc):
        ostro = Ostro(small_dc)
        result, used = place_with_degradation(
            ostro, make_three_tier(), algorithm="eg"
        )
        assert used == "eg"
        assert "three-tier" in ostro.applications
        assert result.placement.assignments

    def test_impossible_deadline_steps_down_the_ladder(self, small_dc):
        """deadline_s=0 makes DBA* unusable; BA* (which ignores the
        deadline option) takes over instead of the request failing."""
        ostro = Ostro(small_dc)
        result, used = place_with_degradation(
            ostro, make_three_tier(), algorithm="dba*", deadline_s=0.0
        )
        assert used in ("ba*", "eg")
        assert "three-tier" in ostro.applications
        assert result.placement.assignments
        assert ostro.verify_state() == []

    def test_degradation_emits_telemetry(self, small_dc, recorder):
        ostro = Ostro(small_dc)
        place_with_degradation(
            ostro, make_three_tier(), algorithm="dba*", deadline_s=0.0
        )
        counter = recorder.registry.get("ostro_degradations_total")
        assert counter.value(from_algorithm="dba*", to_algorithm="ba*") == 1.0
        (event,) = recorder.events.of_type("degraded")
        assert event.fields["from_algorithm"] == "dba*"
        assert event.fields["to_algorithm"] == "ba*"

    def test_infeasible_request_fails_from_the_last_rung(self, small_dc):
        ostro = Ostro(small_dc)
        monster = make_three_tier()
        monster.add_vm("monster", vcpus=10_000, mem_gb=10_000)
        pristine = ostro.state.snapshot()
        with pytest.raises(PlacementError):
            place_with_degradation(
                ostro, monster, algorithm="dba*", deadline_s=0.0
            )
        assert ostro.state.snapshot() == pristine
        assert ostro.applications == {}

    def test_eg_failure_propagates_without_fallback(self, small_dc):
        ostro = Ostro(small_dc)
        monster = make_three_tier()
        monster.add_vm("monster", vcpus=10_000, mem_gb=10_000)
        with pytest.raises(PlacementError):
            place_with_degradation(ostro, monster, algorithm="eg")

    def test_commit_false_leaves_state_untouched(self, small_dc):
        ostro = Ostro(small_dc)
        pristine = ostro.state.snapshot()
        _, used = place_with_degradation(
            ostro,
            make_three_tier(),
            algorithm="dba*",
            commit=False,
            deadline_s=0.0,
        )
        assert used in ("ba*", "eg")
        assert ostro.state.snapshot() == pristine
        assert ostro.applications == {}
