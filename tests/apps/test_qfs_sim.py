"""Tests for the synthetic QFS benchmark."""

from __future__ import annotations

import pytest

from repro.apps.qfs_sim import QFSBenchmark
from repro.core.greedy import EG
from repro.core.objective import Objective
from repro.core.placement import Placement
from repro.datacenter.builder import build_testbed
from repro.datacenter.loadgen import apply_testbed_load
from repro.datacenter.state import DataCenterState
from repro.errors import ReproError
from repro.workloads.qfs import build_qfs


@pytest.fixture(scope="module")
def placed_qfs():
    cloud = build_testbed()
    state = DataCenterState(cloud)
    apply_testbed_load(state, seed=0)
    topology = build_qfs()
    objective = Objective.for_topology(topology, cloud, 0.99, 0.01)
    result = EG().place(topology, cloud, state, objective)
    return topology, result.placement, cloud


class TestBenchmark:
    def test_traffic_fits_reservations(self, placed_qfs):
        topology, placement, cloud = placed_qfs
        report = QFSBenchmark(topology, placement, cloud).run()
        assert report.reservation_violations == []

    def test_utilization_within_capacity(self, placed_qfs):
        topology, placement, cloud = placed_qfs
        report = QFSBenchmark(topology, placement, cloud).run()
        assert 0.0 < report.max_link_utilization <= 1.0

    def test_flow_count(self, placed_qfs):
        topology, placement, cloud = placed_qfs
        report = QFSBenchmark(topology, placement, cloud).run()
        # 12 client->chunk + 12 chunk->volume + 12 heartbeats + client-meta
        assert report.flows == 37

    def test_throughput_capped_by_offered_load(self, placed_qfs):
        topology, placement, cloud = placed_qfs
        report = QFSBenchmark(topology, placement, cloud).run()
        offered = sum(
            bw for nbr, bw in topology.neighbors("client")
            if nbr.startswith("chunk")
        )
        assert 0 < report.aggregate_throughput_mbps <= offered + 1e-9

    def test_worse_placement_lower_throughput_or_equal(self, placed_qfs):
        """An adversarial placement through one starved NIC throttles."""
        topology, _, cloud = placed_qfs
        # all VMs on host 0/1, all volumes elsewhere: every chunk stream
        # shares host0's NIC
        from itertools import cycle

        from repro.core.placement import Assignment

        assignments = {}
        disk_cycle = cycle(range(2, 16))
        for name, node in topology.nodes.items():
            if node.is_vm:
                assignments[name] = Assignment(name, 0)
            else:
                disk = next(disk_cycle)
                assignments[name] = Assignment(
                    name, cloud.disks[disk].host.index, disk
                )
        bad = Placement(
            app_name="bad",
            assignments=assignments,
            reserved_bw_mbps=0,
            new_active_hosts=0,
            hosts_used=0,
        )
        report = QFSBenchmark(topology, bad, cloud).run()
        # 12 chunk-volume flows of 100 Mbps + heartbeats through one
        # 3200 Mbps NIC still fit, but utilization is far higher
        assert report.max_link_utilization > 0.3


class TestValidation:
    def test_incomplete_placement_rejected(self, placed_qfs):
        topology, placement, cloud = placed_qfs
        partial = Placement(
            app_name="x",
            assignments={
                k: v
                for k, v in placement.assignments.items()
                if k != "client"
            },
            reserved_bw_mbps=0,
            new_active_hosts=0,
            hosts_used=0,
        )
        with pytest.raises(ReproError, match="does not cover"):
            QFSBenchmark(topology, partial, cloud)

    def test_non_qfs_topology_rejected(self, small_dc):
        from repro.core.topology import ApplicationTopology

        topo = ApplicationTopology("not-qfs")
        topo.add_vm("solo", 1, 1)
        placement = Placement(
            app_name="not-qfs",
            assignments={
                "solo": __import__(
                    "repro.core.placement", fromlist=["Assignment"]
                ).Assignment("solo", 0)
            },
            reserved_bw_mbps=0,
            new_active_hosts=1,
            hosts_used=1,
        )
        with pytest.raises(ReproError, match="no chunk servers"):
            QFSBenchmark(topo, placement, small_dc)
