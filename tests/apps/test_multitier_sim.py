"""Tests for the multi-tier request-flow simulator."""

from __future__ import annotations

import pytest

from repro.apps.multitier_sim import MultitierSimulator
from repro.core.greedy import EG, EGC
from repro.core.placement import Assignment, Placement
from repro.datacenter.state import DataCenterState
from repro.errors import ReproError
from repro.workloads.multitier import build_multitier


@pytest.fixture(scope="module")
def placed(small_dc_module):
    cloud = small_dc_module
    topo = build_multitier(total_vms=10, tiers=5, heterogeneous=False)
    result = EG().place(topo, cloud)
    return topo, result.placement, cloud


@pytest.fixture(scope="module")
def small_dc_module():
    from repro.datacenter.builder import build_datacenter

    return build_datacenter(num_racks=4, hosts_per_rack=4)


class TestTierInference:
    def test_infers_five_tiers(self, placed):
        topo, placement, cloud = placed
        sim = MultitierSimulator(topo, placement, cloud)
        assert len(sim.tiers) == 5
        assert all(len(t) == 2 for t in sim.tiers)

    def test_explicit_tiers_override(self, placed):
        topo, placement, cloud = placed
        sim = MultitierSimulator(
            topo,
            placement,
            cloud,
            tiers=[["tier1-vm1"], ["tier2-vm1"]],
        )
        assert len(sim.tiers) == 2

    def test_single_tier_rejected(self, placed):
        topo, placement, cloud = placed
        with pytest.raises(ReproError, match=">= 2 tiers"):
            MultitierSimulator(topo, placement, cloud, tiers=[["tier1-vm1"]])

    def test_incomplete_placement_rejected(self, placed):
        topo, placement, cloud = placed
        partial = Placement(
            app_name=placement.app_name,
            assignments={
                k: v
                for k, v in placement.assignments.items()
                if k != "tier1-vm1"
            },
            reserved_bw_mbps=0,
            new_active_hosts=0,
            hosts_used=0,
        )
        with pytest.raises(ReproError, match="does not cover"):
            MultitierSimulator(topo, partial, cloud)


class TestLatency:
    def test_report_shape(self, placed):
        topo, placement, cloud = placed
        report = MultitierSimulator(topo, placement, cloud).run()
        latency = report.latency
        assert latency.paths_sampled >= 1
        assert latency.mean_hops <= latency.max_hops
        assert latency.mean_latency_us == pytest.approx(
            latency.mean_hops * 20.0
        )

    def test_fully_colocated_placement_has_zero_latency(self, small_dc_module):
        cloud = small_dc_module
        topo = build_multitier(
            total_vms=5, tiers=5, heterogeneous=False, zones_per_tier=1
        )
        # 5 tiers x 1 VM, no zones (single-member tiers): pile onto host 0
        everything_on_h0 = Placement(
            app_name=topo.name,
            assignments={
                name: Assignment(name, 0) for name in topo.nodes
            },
            reserved_bw_mbps=0,
            new_active_hosts=1,
            hosts_used=1,
        )
        report = MultitierSimulator(topo, everything_on_h0, cloud).run()
        assert report.latency.max_hops == 0
        assert report.colocated_link_fraction == 1.0
        assert report.max_link_utilization == 0.0

    def test_hop_cost_parameter(self, placed):
        topo, placement, cloud = placed
        fast = MultitierSimulator(topo, placement, cloud, hop_cost_us=1.0)
        slow = MultitierSimulator(topo, placement, cloud, hop_cost_us=100.0)
        assert slow.run().latency.mean_latency_us == pytest.approx(
            100 * fast.run().latency.mean_latency_us
        )


class TestPlacementQualityShowsUp:
    def test_eg_no_worse_latency_than_egc(self, small_dc_module):
        """The bandwidth-aware placement puts communicating tiers closer,
        which this simulator surfaces as lower request latency."""
        cloud = small_dc_module
        topo = build_multitier(total_vms=10, tiers=5, heterogeneous=True)
        state = DataCenterState(cloud)
        from repro.datacenter.loadgen import apply_table_iv_load

        apply_table_iv_load(state, seed=0)
        eg = EG().place(topo, cloud, state)
        egc = EGC().place(topo, cloud, state)
        eg_lat = MultitierSimulator(topo, eg.placement, cloud).run().latency
        egc_lat = MultitierSimulator(topo, egc.placement, cloud).run().latency
        assert eg_lat.mean_hops <= egc_lat.mean_hops + 1e-9

    def test_utilization_within_capacity(self, placed):
        topo, placement, cloud = placed
        report = MultitierSimulator(topo, placement, cloud).run()
        assert 0.0 <= report.max_link_utilization <= 1.0
