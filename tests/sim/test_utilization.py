"""Tests for the cluster-utilization report."""

from __future__ import annotations

import pytest

from repro.core.scheduler import Ostro
from repro.datacenter.loadgen import apply_table_iv_load
from repro.datacenter.state import DataCenterState
from repro.sim.utilization import format_utilization, utilization_report
from tests.conftest import make_three_tier


class TestReport:
    def test_pristine_state_all_zero(self, small_dc):
        report = utilization_report(DataCenterState(small_dc))
        assert report.hosts_active == 0
        assert report.cpu_used_frac == 0.0
        assert report.nic_used_frac == 0.0
        assert report.busiest_nic_frac == 0.0
        assert report.hosts_total == small_dc.num_hosts

    def test_placement_moves_the_needles(self, small_dc):
        ostro = Ostro(small_dc)
        ostro.place(make_three_tier(), algorithm="eg")
        report = utilization_report(ostro.state)
        assert report.hosts_active >= 1
        assert report.cpu_used_frac > 0
        assert report.disk_used_frac > 0

    def test_fractions_bounded(self, small_dc):
        state = DataCenterState(small_dc)
        apply_table_iv_load(state, seed=0)
        report = utilization_report(state)
        for value in report.as_dict().values():
            assert 0.0 <= value <= max(1.0, report.hosts_total)

    def test_busiest_nic_at_least_average(self, small_dc):
        state = DataCenterState(small_dc)
        state.reserve_path((small_dc.hosts[0].link_index,), 9_000)
        report = utilization_report(state)
        assert report.busiest_nic_frac == pytest.approx(0.9)
        assert report.busiest_nic_frac >= report.nic_used_frac

    def test_uplink_fraction_counts_only_uplinks(self, small_dc):
        state = DataCenterState(small_dc)
        tor = small_dc.racks[0].link_index
        state.reserve_path((tor,), small_dc.link_capacity_mbps[tor] / 2)
        report = utilization_report(state)
        assert report.uplink_used_frac > 0
        assert report.nic_used_frac == 0.0

    def test_shared_nic_counted_once(self):
        """Hosts sharing one NIC link must not inflate the capacity pool.

        Two hosts behind one chassis NIC: the pool is one NIC's capacity,
        so half-filling that link reads 50% used. Summing per host counts
        the shared link twice (and orphans the second host's original
        NIC index into the uplink pool), reporting 25% instead.
        """
        from repro.datacenter.builder import build_datacenter

        cloud = build_datacenter(num_racks=1, hosts_per_rack=2)
        cloud.hosts[1].link_index = cloud.hosts[0].link_index
        shared = cloud.hosts[0].link_index
        state = DataCenterState(cloud)
        state.reserve_path((shared,), cloud.link_capacity_mbps[shared] / 2)
        report = utilization_report(state)
        assert report.nic_used_frac == pytest.approx(0.5)
        assert report.busiest_nic_frac == pytest.approx(0.5)


class TestFormatting:
    def test_dashboard_lines(self, small_dc):
        text = format_utilization(utilization_report(DataCenterState(small_dc)))
        assert "hosts: 0/16 active" in text
        assert "cpu:" in text and "uplinks:" in text

    def test_as_dict_keys(self, small_dc):
        report = utilization_report(DataCenterState(small_dc))
        assert set(report.as_dict()) == {
            "hosts_total",
            "hosts_active",
            "cpu_used_frac",
            "mem_used_frac",
            "disk_used_frac",
            "nic_used_frac",
            "uplink_used_frac",
            "busiest_nic_frac",
        }
