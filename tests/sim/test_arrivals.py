"""Tests for the workload-replay (churn) simulator."""

from __future__ import annotations

import pytest

from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_datacenter
from repro.sim.arrivals import (
    TraceEvent,
    WorkloadTrace,
    default_app_factory,
    event_sort_key,
    replay,
)


@pytest.fixture(scope="module")
def cloud():
    return build_datacenter(num_racks=3, hosts_per_rack=4)


class TestTraceGeneration:
    def test_event_pairing(self):
        trace = WorkloadTrace.poisson(10, default_app_factory, seed=1)
        arrives = [e for e in trace.events if e.kind == "arrive"]
        departs = [e for e in trace.events if e.kind == "depart"]
        assert len(arrives) == len(departs) == 10
        assert len(trace.topologies) == 10

    def test_events_time_ordered(self):
        trace = WorkloadTrace.poisson(20, default_app_factory, seed=2)
        times = [e.time for e in trace.events]
        assert times == sorted(times)

    def test_departure_after_arrival(self):
        trace = WorkloadTrace.poisson(15, default_app_factory, seed=3)
        arrive_at = {
            e.app_id: e.time for e in trace.events if e.kind == "arrive"
        }
        for event in trace.events:
            if event.kind == "depart":
                assert event.time >= arrive_at[event.app_id]

    def test_deterministic_per_seed(self):
        a = WorkloadTrace.poisson(10, default_app_factory, seed=7)
        b = WorkloadTrace.poisson(10, default_app_factory, seed=7)
        assert [(e.time, e.kind, e.app_id) for e in a.events] == [
            (e.time, e.kind, e.app_id) for e in b.events
        ]
        for app_id in a.topologies:
            assert set(a.topologies[app_id].nodes) == set(
                b.topologies[app_id].nodes
            )

    def test_topologies_renamed_by_id(self):
        trace = WorkloadTrace.poisson(3, default_app_factory, seed=4)
        assert trace.topologies[0].name == "app-0"

    def test_departures_sort_before_simultaneous_arrivals(self):
        events = [
            TraceEvent(5.0, "arrive", 1),
            TraceEvent(5.0, "depart", 0),
            TraceEvent(0.0, "arrive", 0),
        ]
        ordered = sorted(events, key=event_sort_key)
        assert [(e.time, e.kind) for e in ordered] == [
            (0.0, "arrive"),
            (5.0, "depart"),
            (5.0, "arrive"),
        ]

    def test_same_instant_rank_is_depart_arrive_update_scale(self):
        events = [
            TraceEvent(5.0, "scale", 0),
            TraceEvent(5.0, "update", 0),
            TraceEvent(5.0, "arrive", 1),
            TraceEvent(5.0, "depart", 0),
        ]
        ordered = sorted(events, key=event_sort_key)
        assert [e.kind for e in ordered] == [
            "depart",
            "arrive",
            "update",
            "scale",
        ]

    def test_unknown_event_kind_raises(self):
        """Regression: unknown kinds used to silently rank as arrivals,
        corrupting replay ordering with no diagnostic."""
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown trace event kind"):
            event_sort_key(TraceEvent(0.0, "arive", 0))

    def test_scale_events_interleave_without_perturbing_the_trace(self):
        """Enabling scale events must not move, add, or drop any other
        event -- the non-scale subsequence stays byte-identical."""
        plain = WorkloadTrace.poisson_storm(
            20, default_app_factory, seed=7
        )
        elastic = WorkloadTrace.poisson_storm(
            20, default_app_factory, seed=7, scale_every_s=300.0
        )
        scale_events = [e for e in elastic.events if e.kind == "scale"]
        assert scale_events, "scale_every_s should emit scale events"
        assert [
            e for e in elastic.events if e.kind != "scale"
        ] == plain.events
        assert {
            i: (t.name, sorted(t.nodes)) for i, t in elastic.topologies.items()
        } == {i: (t.name, sorted(t.nodes)) for i, t in plain.topologies.items()}


class TestSimultaneousEvents:
    def test_departure_drains_before_equal_time_arrival(self):
        """An arrival at the exact instant a tenant departs must fit.

        One host, and each app needs the whole host: app 1 arrives at
        t=5.0, the moment app 0 departs. With departures draining first
        both are admitted; sorting arrivals first would spuriously
        reject app 1 against capacity that is free at that instant.
        """
        cloud = build_datacenter(num_racks=1, hosts_per_rack=1)
        host = cloud.hosts[0]
        trace = WorkloadTrace()
        for app_id in range(2):
            topo = ApplicationTopology(f"full-{app_id}")
            topo.add_vm("vm0", vcpus=host.cpu_cores, mem_gb=host.mem_gb)
            trace.topologies[app_id] = topo.copy(f"app-{app_id}")
        raw = [
            TraceEvent(0.0, "arrive", 0),
            TraceEvent(5.0, "depart", 0),
            TraceEvent(5.0, "arrive", 1),
            TraceEvent(10.0, "depart", 1),
        ]
        trace.events = sorted(raw, key=event_sort_key)
        report = replay(trace, cloud, algorithm="eg")
        assert report.rejected == 0
        assert report.accepted == 2


class TestReplay:
    def test_all_admitted_on_roomy_cloud(self, cloud):
        trace = WorkloadTrace.poisson(
            8,
            default_app_factory,
            mean_interarrival_s=120,
            mean_lifetime_s=60,  # mostly sequential: little concurrency
            seed=5,
        )
        report = replay(trace, cloud, algorithm="eg")
        assert report.arrivals == 8
        assert report.rejected == 0
        assert report.acceptance_rate == 1.0

    def test_overload_produces_rejections(self):
        tiny = build_datacenter(num_racks=1, hosts_per_rack=2)
        trace = WorkloadTrace.poisson(
            30,
            default_app_factory,
            mean_interarrival_s=1,
            mean_lifetime_s=100_000,  # nobody leaves
            seed=6,
        )
        report = replay(trace, tiny, algorithm="egc")
        assert report.rejected > 0
        assert report.accepted + report.rejected == report.arrivals
        assert report.rejections  # ids recorded

    def test_departures_free_capacity(self):
        # 4 hosts: enough for any single generated app (HA zones span <= 3
        # hosts), but not for several concurrent ones
        tiny = build_datacenter(num_racks=2, hosts_per_rack=2)
        # sequential arrivals with short lifetimes: each app leaves before
        # the next arrives, so everything fits even on a tiny cloud
        trace = WorkloadTrace.poisson(
            10,
            default_app_factory,
            mean_interarrival_s=1000,
            mean_lifetime_s=1,
            seed=8,
        )
        report = replay(trace, tiny, algorithm="eg")
        assert report.rejected == 0
        assert report.peak_active_apps <= 2

    def test_same_trace_compares_algorithms(self, cloud):
        trace = WorkloadTrace.poisson(
            10, default_app_factory, mean_lifetime_s=10_000, seed=9
        )
        eg = replay(trace, cloud, algorithm="eg")
        egc = replay(trace, cloud, algorithm="egc")
        assert eg.arrivals == egc.arrivals == 10
        # both see the exact same applications
        assert eg.algorithm != egc.algorithm

    def test_utilization_tracked(self, cloud):
        trace = WorkloadTrace.poisson(
            6, default_app_factory, mean_lifetime_s=10_000, seed=10
        )
        report = replay(trace, cloud, algorithm="eg")
        assert 0 < report.mean_cpu_used_frac <= report.peak_cpu_used_frac <= 1
