"""Tests for scenarios, the experiment runner, and reporting."""

from __future__ import annotations

import pytest

from repro.sim.experiment import run_placement
from repro.sim.reporting import format_series, format_table
from repro.sim.runner import sweep
from repro.sim.scenarios import (
    dba_deadline_s,
    full_scale,
    mesh_scenario,
    multitier_scenario,
    qfs_testbed_scenario,
    sweep_sizes,
)


class TestScenarioConstruction:
    def test_qfs_scenarios(self):
        nonuniform = qfs_testbed_scenario(uniform=False)
        uniform = qfs_testbed_scenario(uniform=True)
        cloud = nonuniform.build_cloud()
        assert cloud.num_hosts == 16
        loaded = nonuniform.build_state(cloud, seed=0)
        assert len(loaded.active_host_indices()) == 12
        idle = uniform.build_state(uniform.build_cloud(), seed=0)
        assert idle.active_host_indices() == []
        assert nonuniform.theta_bw == 0.99

    def test_qfs_topology_size_param_is_chunk_count(self):
        scenario = qfs_testbed_scenario()
        topo = scenario.build_topology(12, 0)
        assert len(topo.vms()) == 14

    def test_multitier_scenarios(self):
        het = multitier_scenario(heterogeneous=True)
        hom = multitier_scenario(heterogeneous=False)
        topo = het.build_topology(25, 0)
        assert topo.size() == 25
        het_state = het.build_state(het.build_cloud(), 0)
        hom_state = hom.build_state(hom.build_cloud(), 0)
        assert het_state.active_host_indices() != []
        assert hom_state.active_host_indices() == []

    def test_mesh_scenario_seeded(self):
        scenario = mesh_scenario()
        a = scenario.build_topology(25, seed=1)
        b = scenario.build_topology(25, seed=1)
        assert {(l.a, l.b) for l in a.links} == {(l.a, l.b) for l in b.links}

    def test_sweep_sizes_shape(self):
        het = sweep_sizes("multitier", True)
        assert het[0] == 25
        assert all(b - a == 25 for a, b in zip(het, het[1:]))
        hom_mesh = sweep_sizes("mesh", False)
        assert hom_mesh[0] == 35

    def test_deadline_grows_with_size(self):
        assert dba_deadline_s(200) >= dba_deadline_s(25)


class TestRunPlacement:
    def test_qfs_row(self):
        scenario = qfs_testbed_scenario()
        row = run_placement("egc", scenario, size=12, seed=0)
        assert row.algorithm == "EGC"
        assert row.workload == "qfs"
        assert row.size == 29  # 14 VMs + 15 volumes
        assert row.reserved_bw_mbps > 0

    def test_dba_gets_deadline(self):
        scenario = qfs_testbed_scenario()
        row = run_placement("dba*", scenario, size=4, seed=0, deadline_s=0.3)
        assert row.algorithm == "DBA*"


class TestSweep:
    def test_sweep_aggregates(self):
        scenario = qfs_testbed_scenario()
        rows = sweep(
            scenario, ["egc", "eg"], sizes=[3, 6], seeds=(0, 1)
        )
        # 2 algorithms x 2 sizes, aggregated over 2 seeds
        assert len(rows) == 4
        assert all(r.seed == -1 for r in rows)

    def test_sweep_raw(self):
        scenario = qfs_testbed_scenario()
        rows = sweep(
            scenario, ["egc"], sizes=[3], seeds=(0, 1), aggregate=False
        )
        assert len(rows) == 2
        assert {r.seed for r in rows} == {0, 1}


class TestReporting:
    @pytest.fixture
    def rows(self):
        scenario = qfs_testbed_scenario()
        return sweep(scenario, ["egc", "eg"], sizes=[3, 6], seeds=(0,))

    def test_format_table(self, rows):
        text = format_table(
            [r for r in rows if r.size == rows[0].size], title="Table I"
        )
        assert "Table I" in text
        assert "Bandwidth (Mbps)" in text
        assert "EGC" in text and "EG" in text

    def test_format_series(self, rows):
        text = format_series(rows, metric="reserved_bw_gbps")
        lines = text.splitlines()
        assert lines[0].split() == ["size", "EGC", "EG"]
        assert len(lines) == 2 + 2  # header + rule + 2 sizes

    def test_format_series_missing_cell(self):
        from tests.sim.test_metrics import make_row

        rows = [make_row(algorithm="EG", size=25)]
        text = format_series(rows, algorithms=["EG", "DBA*"])
        assert "-" in text
