"""Fragmentation metrics (repro.sim.utilization): the defrag trigger.

The contract the background defragmenter leans on: both indices are 0 on
an empty or perfectly consolidated cloud, grow monotonically as the same
load scatters over more hosts (and those hosts over more racks), and
serialize byte-stably so report fingerprints are reproducible.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.placement import Assignment, Placement
from repro.datacenter.builder import build_datacenter
from repro.datacenter.state import DataCenterState
from repro.sim.utilization import (
    dispersion_index,
    fragmentation_report,
    placement_spread,
    stranded_capacity_index,
)


def make_cloud():
    """2 racks x 4 hosts (16 cores / 32 GB each): rack 1 is hosts 0-3."""
    return build_datacenter(num_racks=2, hosts_per_rack=4)


def make_placement(hosts):
    """One VM per entry of ``hosts``, placed on that host index."""
    assignments = {
        f"vm{i}": Assignment(node=f"vm{i}", host=h)
        for i, h in enumerate(hosts)
    }
    used = len(set(hosts))
    return Placement(
        app_name="a",
        assignments=assignments,
        reserved_bw_mbps=0.0,
        new_active_hosts=used,
        hosts_used=used,
    )


class TestEmptyAndPacked:
    def test_empty_dc_scores_zero_everywhere(self):
        report = fragmentation_report(DataCenterState(make_cloud()), [])
        assert report.as_dict() == {
            "stranded_cpu_frac": 0.0,
            "stranded_mem_frac": 0.0,
            "stranded_index": 0.0,
            "dispersion_index": 0.0,
            "fragmentation_index": 0.0,
        }

    def test_perfectly_packed_host_strands_nothing(self):
        state = DataCenterState(make_cloud())
        state.place_vm(0, 16, 32)  # the host's entire capacity
        assert stranded_capacity_index(state) == 0.0

    def test_partially_used_active_host_strands_capacity(self):
        state = DataCenterState(make_cloud())
        state.place_vm(0, 8, 16)  # half the host sits active but idle
        assert stranded_capacity_index(state) > 0.0

    def test_one_host_placement_has_zero_spread(self):
        cloud = make_cloud()
        assert placement_spread(cloud, make_placement([0, 0, 0])) == 0.0
        assert placement_spread(cloud, make_placement([])) == 0.0


class TestMonotoneUnderScatter:
    def test_more_hosts_reads_more_fragmented(self):
        cloud = make_cloud()
        packed = placement_spread(cloud, make_placement([0, 0, 1, 1]))
        scattered = placement_spread(cloud, make_placement([0, 1, 2, 3]))
        assert 0.0 < packed < scattered

    def test_cross_rack_reads_more_fragmented_than_same_rack(self):
        cloud = make_cloud()
        same_rack = placement_spread(cloud, make_placement([0, 0, 1, 1]))
        cross_rack = placement_spread(cloud, make_placement([0, 0, 4, 4]))
        assert same_rack < cross_rack

    def test_dispersion_index_averages_over_applications(self):
        cloud = make_cloud()
        packed = make_placement([0, 0])
        scattered = make_placement([0, 4])
        assert dispersion_index(cloud, []) == 0.0
        assert dispersion_index(cloud, [packed]) == 0.0
        both = dispersion_index(cloud, [packed, scattered])
        assert both == (
            placement_spread(cloud, packed)
            + placement_spread(cloud, scattered)
        ) / 2.0

    def test_empty_placements_do_not_dilute_the_mean(self):
        cloud = make_cloud()
        scattered = make_placement([0, 4])
        with_empty = dispersion_index(
            cloud, [scattered, make_placement([])]
        )
        assert with_empty == placement_spread(cloud, scattered)


class TestReport:
    def test_fragmentation_index_is_the_mean_of_both_terms(self):
        state = DataCenterState(make_cloud())
        state.place_vm(0, 4, 8)
        state.place_vm(4, 4, 8)
        report = fragmentation_report(state, [make_placement([0, 4])])
        assert report.stranded_index == (
            report.stranded_cpu_frac + report.stranded_mem_frac
        ) / 2.0
        assert report.fragmentation_index == (
            report.stranded_index + report.dispersion_index
        ) / 2.0
        assert report.dispersion_index > 0.0

    def test_as_dict_fingerprint_is_byte_stable(self):
        def fingerprint():
            state = DataCenterState(make_cloud())
            state.place_vm(0, 4, 8)
            state.place_vm(5, 4, 8)
            report = fragmentation_report(
                state, [make_placement([0, 5]), make_placement([1, 1])]
            )
            blob = json.dumps(report.as_dict(), sort_keys=True)
            return hashlib.sha256(blob.encode("utf-8")).hexdigest()

        assert fingerprint() == fingerprint()
