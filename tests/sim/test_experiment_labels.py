"""Tests for experiment plumbing details."""

from __future__ import annotations

import pytest

from repro.errors import PlacementError
from repro.sim.experiment import ALGORITHM_LABELS, run_placement
from repro.sim.runner import sweep
from repro.sim.scenarios import qfs_testbed_scenario


class TestLabels:
    def test_paper_labels(self):
        assert ALGORITHM_LABELS == {
            "egc": "EGC",
            "egbw": "EGBW",
            "eg": "EG",
            "ba*": "BA*",
            "dba*": "DBA*",
        }

    def test_label_applied_case_insensitively(self):
        scenario = qfs_testbed_scenario()
        row = run_placement("EGC", scenario, size=3, seed=0)
        assert row.algorithm == "EGC"


class TestSweepInfeasibleHandling:
    def test_skip_infeasible_drops_rows(self):
        scenario = qfs_testbed_scenario()
        # 17 chunk servers need 17 host-diverse volumes; the testbed has 16
        rows = sweep(
            scenario,
            ["egc"],
            sizes=[3, 17],
            seeds=(0,),
            skip_infeasible=True,
        )
        # only the 3-chunk-server topology survived: 2 VMs (client, meta)
        # + 3 chunk VMs + 3 chunk volumes + 2 meta volumes + 1 client volume
        assert {r.size for r in rows} == {11}

    def test_propagates_without_skip(self):
        scenario = qfs_testbed_scenario()
        with pytest.raises(PlacementError):
            sweep(scenario, ["egc"], sizes=[17], seeds=(0,))


class TestBaselineActive:
    def test_baseline_active_recorded(self):
        scenario = qfs_testbed_scenario(uniform=False)
        row = run_placement("egc", scenario, size=3, seed=0)
        assert row.baseline_active_hosts == 12
        assert row.total_active_hosts >= 12
