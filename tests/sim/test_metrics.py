"""Tests for measurement rows and aggregation."""

from __future__ import annotations

import pytest


from repro.core.greedy import EG
from repro.sim.metrics import MeasurementRow, aggregate_rows
from tests.conftest import make_three_tier


def make_row(**overrides) -> MeasurementRow:
    defaults = dict(
        algorithm="EG",
        workload="multitier",
        size=25,
        heterogeneous=True,
        seed=0,
        reserved_bw_mbps=1000.0,
        new_active_hosts=2,
        hosts_used=5,
        runtime_s=0.5,
        objective_value=0.1,
    )
    defaults.update(overrides)
    return MeasurementRow(**defaults)


class TestRow:
    def test_gbps_conversion(self):
        assert make_row(reserved_bw_mbps=2500).reserved_bw_gbps == 2.5

    def test_from_result(self, small_dc):
        topo = make_three_tier()
        result = EG().place(topo, small_dc)
        row = MeasurementRow.from_result(
            result, "EG", "three-tier", topo.size(), True, 7
        )
        assert row.reserved_bw_mbps == result.reserved_bw_mbps
        assert row.new_active_hosts == result.new_active_hosts
        assert row.runtime_s == result.runtime_s
        assert row.seed == 7


class TestAggregate:
    def test_means_over_seeds(self):
        rows = [
            make_row(seed=0, reserved_bw_mbps=100, runtime_s=1.0),
            make_row(seed=1, reserved_bw_mbps=300, runtime_s=3.0),
        ]
        (agg,) = aggregate_rows(rows)
        assert agg.reserved_bw_mbps == 200
        assert agg.runtime_s == 2.0
        assert agg.seed == -1

    def test_groups_kept_separate(self):
        rows = [
            make_row(algorithm="EG", size=25),
            make_row(algorithm="EGC", size=25),
            make_row(algorithm="EG", size=50),
        ]
        agg = aggregate_rows(rows)
        assert len(agg) == 3

    def test_group_order_is_first_appearance(self):
        rows = [
            make_row(algorithm="EGC"),
            make_row(algorithm="EG"),
            make_row(algorithm="EGC", seed=1),
        ]
        agg = aggregate_rows(rows)
        assert [r.algorithm for r in agg] == ["EGC", "EG"]

    def test_empty(self):
        assert aggregate_rows([]) == []


class TestNearestRankPercentile:
    """Edge-pinning tests for the single shared percentile helper."""

    def test_empty_returns_zero(self):
        from repro.sim.metrics import nearest_rank_percentile

        assert nearest_rank_percentile([], 0.5) == 0.0

    @pytest.mark.parametrize("q", [0.0, 0.01, 0.5, 0.95, 0.99, 1.0])
    def test_single_value_for_every_q(self, q):
        from repro.sim.metrics import nearest_rank_percentile

        assert nearest_rank_percentile([7.5], q) == 7.5

    @pytest.mark.parametrize(
        "n,q,rank",
        [
            (100, 0.99, 99),  # ceil(99) = rank 99, not the max
            (100, 0.50, 50),
            (100, 0.95, 95),
            (10, 0.99, 10),  # ceil(9.9) = rank 10: the max
            (10, 0.91, 10),
            (10, 0.90, 9),  # exact multiple: rank q*n, no bump
            (5, 0.5, 3),  # ceil(2.5) = 3, the median of odd-ish ranks
            (4, 0.5, 2),
            (3, 1.0, 3),
            (3, 0.0, 1),  # degenerate q clamps to the minimum
        ],
    )
    def test_nearest_rank_definition(self, n, q, rank):
        from repro.sim.metrics import nearest_rank_percentile

        values = [float(i + 1) for i in range(n)]  # value == its rank
        assert nearest_rank_percentile(values, q) == float(rank)

    def test_unsorted_input_is_sorted_internally(self):
        from repro.sim.metrics import nearest_rank_percentile

        assert nearest_rank_percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_q_above_one_clamps_to_max(self):
        from repro.sim.metrics import nearest_rank_percentile

        assert nearest_rank_percentile([1.0, 2.0, 3.0], 1.5) == 3.0
