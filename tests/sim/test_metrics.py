"""Tests for measurement rows and aggregation."""

from __future__ import annotations


from repro.core.greedy import EG
from repro.sim.metrics import MeasurementRow, aggregate_rows
from tests.conftest import make_three_tier


def make_row(**overrides) -> MeasurementRow:
    defaults = dict(
        algorithm="EG",
        workload="multitier",
        size=25,
        heterogeneous=True,
        seed=0,
        reserved_bw_mbps=1000.0,
        new_active_hosts=2,
        hosts_used=5,
        runtime_s=0.5,
        objective_value=0.1,
    )
    defaults.update(overrides)
    return MeasurementRow(**defaults)


class TestRow:
    def test_gbps_conversion(self):
        assert make_row(reserved_bw_mbps=2500).reserved_bw_gbps == 2.5

    def test_from_result(self, small_dc):
        topo = make_three_tier()
        result = EG().place(topo, small_dc)
        row = MeasurementRow.from_result(
            result, "EG", "three-tier", topo.size(), True, 7
        )
        assert row.reserved_bw_mbps == result.reserved_bw_mbps
        assert row.new_active_hosts == result.new_active_hosts
        assert row.runtime_s == result.runtime_s
        assert row.seed == 7


class TestAggregate:
    def test_means_over_seeds(self):
        rows = [
            make_row(seed=0, reserved_bw_mbps=100, runtime_s=1.0),
            make_row(seed=1, reserved_bw_mbps=300, runtime_s=3.0),
        ]
        (agg,) = aggregate_rows(rows)
        assert agg.reserved_bw_mbps == 200
        assert agg.runtime_s == 2.0
        assert agg.seed == -1

    def test_groups_kept_separate(self):
        rows = [
            make_row(algorithm="EG", size=25),
            make_row(algorithm="EGC", size=25),
            make_row(algorithm="EG", size=50),
        ]
        agg = aggregate_rows(rows)
        assert len(agg) == 3

    def test_group_order_is_first_appearance(self):
        rows = [
            make_row(algorithm="EGC"),
            make_row(algorithm="EG"),
            make_row(algorithm="EGC", seed=1),
        ]
        agg = aggregate_rows(rows)
        assert [r.algorithm for r in agg] == ["EGC", "EG"]

    def test_empty(self):
        assert aggregate_rows([]) == []
