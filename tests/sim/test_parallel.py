"""Tests for the process-pool execution layer (repro.sim.parallel).

The contract under test: any worker count produces the same results, in
the same order, as the serial loop -- rows, chaos fingerprints, replay
reports, telemetry event counts -- wall-clock fields aside.
"""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.errors import ReproError
from repro.sim.chaos import run_chaos_many
from repro.sim.metrics import rows_fingerprint
from repro.sim.parallel import (
    TaskOutcome,
    default_workers,
    merge_outcomes,
    run_tasks,
)
from repro.sim.runner import sweep
from repro.sim.scenarios import Scenario, multitier_scenario

SIZES = [10, 15]
ALGORITHMS = ["egc", "eg"]
SEEDS = (0, 1)


def _square(x: int) -> int:
    return x * x


def _explode(x: int) -> int:
    if x == 2:
        raise ValueError(f"boom at {x}")
    return x


class TestRunTasks:
    def test_inline_and_pooled_agree(self):
        inline = run_tasks(_square, [1, 2, 3], workers=1)
        pooled = run_tasks(_square, [1, 2, 3], workers=2)
        assert [o.value for o in inline] == [o.value for o in pooled] == [
            1,
            4,
            9,
        ]

    def test_error_reraised_at_serial_position(self):
        for workers in (1, 2):
            outcomes = run_tasks(_explode, [0, 1, 2, 3], workers=workers)
            with pytest.raises(ValueError, match="boom at 2"):
                merge_outcomes(outcomes)

    def test_skip_errors_drops_only_failing_cells(self):
        outcomes = run_tasks(_explode, [0, 1, 2, 3], workers=2)
        values = merge_outcomes(outcomes, skip_errors=(ValueError,))
        assert values == [0, 1, 3]

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_outcome_is_picklable(self):
        outcome = TaskOutcome(value=3, error=ValueError("x"))
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.value == 3
        assert isinstance(clone.error, ValueError)


class TestParallelSweep:
    def test_rows_identical_to_serial(self):
        scenario = multitier_scenario()
        serial = sweep(
            scenario, ALGORITHMS, SIZES, seeds=SEEDS, workers=1
        )
        parallel = sweep(
            scenario, ALGORITHMS, SIZES, seeds=SEEDS, workers=4
        )
        assert rows_fingerprint(serial) == rows_fingerprint(parallel)
        assert [(r.algorithm, r.size) for r in serial] == [
            (r.algorithm, r.size) for r in parallel
        ]

    def test_raw_rows_identical_to_serial(self):
        scenario = multitier_scenario()
        serial = sweep(
            scenario, ALGORITHMS, SIZES, seeds=SEEDS, workers=1,
            aggregate=False,
        )
        parallel = sweep(
            scenario, ALGORITHMS, SIZES, seeds=SEEDS, workers=2,
            aggregate=False,
        )
        assert len(serial) == len(SIZES) * len(ALGORITHMS) * len(SEEDS)
        assert rows_fingerprint(serial) == rows_fingerprint(parallel)

    def test_scenario_without_spec_rejected(self):
        canned = multitier_scenario()
        bare = Scenario(
            name="adhoc",
            build_cloud=canned.build_cloud,
            build_state=canned.build_state,
            build_topology=canned.build_topology,
        )
        with pytest.raises(ReproError, match="ScenarioSpec"):
            sweep(bare, ["eg"], [10], workers=2)

    def test_scenario_spec_round_trips_through_pickle(self):
        scenario = multitier_scenario(heterogeneous=False)
        spec = pickle.loads(pickle.dumps(scenario.spec))
        rebuilt = spec.build()
        assert rebuilt.name == scenario.name

    def test_telemetry_counts_match_serial(self):
        scenario = multitier_scenario()
        serial_rec = obs.TelemetryRecorder()
        sweep(
            scenario, ["eg"], [10], seeds=(0, 1), workers=1,
            recorder=serial_rec,
        )
        parallel_rec = obs.TelemetryRecorder()
        sweep(
            scenario, ["eg"], [10], seeds=(0, 1), workers=2,
            recorder=parallel_rec,
        )
        s_counter = serial_rec.registry.counter(
            "ostro_placements_total", "", ("algorithm",)
        )
        p_counter = parallel_rec.registry.counter(
            "ostro_placements_total", "", ("algorithm",)
        )
        assert s_counter.value(algorithm="eg") == p_counter.value(
            algorithm="eg"
        )
        assert serial_rec.events.count() == parallel_rec.events.count()
        assert [e.type for e in serial_rec.events.events] == [
            e.type for e in parallel_rec.events.events
        ]


class TestParallelChaos:
    def test_reports_identical_across_worker_counts(self):
        kwargs = dict(
            apps=3,
            app_vms=10,
            faults={"hosts": 1, "api_transient_rate": 0.3},
        )
        serial = run_chaos_many([0, 1, 2], workers=1, **kwargs)
        parallel = run_chaos_many([0, 1, 2], workers=2, **kwargs)
        assert [r.seed for r in serial] == [0, 1, 2]
        for a, b in zip(serial, parallel):
            assert a.fingerprint == b.fingerprint
            assert a.apps_deployed == b.apps_deployed
            assert a.hosts_failed == b.hosts_failed
            assert a.api_faults == b.api_faults
            assert a.invariant_violations == b.invariant_violations


class TestParallelReplay:
    def test_reports_match_serial_replay(self):
        from repro.datacenter.builder import build_datacenter
        from repro.sim.arrivals import (
            WorkloadTrace,
            default_app_factory,
            replay,
        )
        from repro.sim.parallel import parallel_replay

        cloud = build_datacenter(num_racks=2, hosts_per_rack=2)
        trace = WorkloadTrace.poisson(
            8, default_app_factory, mean_lifetime_s=120, seed=3
        )
        serial = [
            replay(trace, cloud, algorithm=a) for a in ("eg", "egc")
        ]
        parallel = parallel_replay(trace, cloud, ["eg", "egc"], workers=2)
        for a, b in zip(serial, parallel):
            assert a.algorithm == b.algorithm
            assert a.accepted == b.accepted
            assert a.rejected == b.rejected
            assert a.rejections == b.rejections
            assert a.peak_cpu_used_frac == pytest.approx(
                b.peak_cpu_used_frac
            )
