"""Tests for the ASCII chart renderer."""

from __future__ import annotations

from repro.sim.plots import ascii_chart
from tests.sim.test_metrics import make_row


class TestAsciiChart:
    def _rows(self):
        return [
            make_row(algorithm="EGC", size=25, reserved_bw_mbps=6000),
            make_row(algorithm="EG", size=25, reserved_bw_mbps=2000),
            make_row(algorithm="EGC", size=50, reserved_bw_mbps=13000),
            make_row(algorithm="EG", size=50, reserved_bw_mbps=5000),
        ]

    def test_contains_axis_and_legend(self):
        chart = ascii_chart(self._rows(), title="Fig 7")
        assert "Fig 7" in chart
        assert "o=EGC" in chart and "x=EG" in chart
        assert "[reserved_bw_gbps]" in chart
        assert "25" in chart and "50" in chart

    def test_peak_on_top_row(self):
        chart = ascii_chart(self._rows())
        lines = chart.splitlines()
        # the top grid row carries the peak label and the EGC@50 marker
        assert "13.0" in lines[0]
        assert "o" in lines[0]

    def test_height_respected(self):
        chart = ascii_chart(self._rows(), height=6)
        grid_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(grid_lines) == 6

    def test_missing_cells_tolerated(self):
        rows = self._rows()[:3]  # EG@50 missing
        chart = ascii_chart(rows)
        assert "o=EGC" in chart

    def test_empty_rows(self):
        assert "(no data)" in ascii_chart([], title="empty")

    def test_constant_series_no_divide_by_zero(self):
        rows = [
            make_row(algorithm="EG", size=25, reserved_bw_mbps=0),
            make_row(algorithm="EG", size=50, reserved_bw_mbps=0),
        ]
        chart = ascii_chart(rows)
        assert "x" in chart or "o" in chart
