"""Tests for DBA* (deadline-bounded A*)."""

from __future__ import annotations

import time

import pytest

from repro.core.astar import BAStar
from repro.core.deadline import DBAStar
from repro.core.greedy import EG
from repro.core.objective import Objective
from repro.datacenter.loadgen import apply_random_load
from repro.datacenter.state import DataCenterState
from repro.errors import DeadlineError
from tests.conftest import make_three_tier
from tests.core.test_greedy import verify_placement_feasible


class TestConstruction:
    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(DeadlineError):
            DBAStar(deadline_s=0)
        with pytest.raises(DeadlineError):
            DBAStar(deadline_s=-1)


class TestPlacementQuality:
    def test_feasible_and_complete(self, three_tier, small_dc):
        base = DataCenterState(small_dc)
        result = DBAStar(deadline_s=0.5).place(three_tier, small_dc, base)
        assert set(result.placement.assignments) == set(three_tier.nodes)
        verify_placement_feasible(three_tier, small_dc, base, result.placement)

    def test_never_worse_than_eg(self, small_dc):
        for seed in range(3):
            state = DataCenterState(small_dc)
            apply_random_load(state, fraction_hosts=0.4, seed=seed)
            topo = make_three_tier()
            objective = Objective.for_topology(topo, small_dc)
            eg = EG().place(topo, small_dc, state, objective)
            dba = DBAStar(deadline_s=0.5, seed=seed).place(
                topo, small_dc, state, objective
            )
            assert dba.objective_value <= eg.objective_value + 1e-9

    def test_bracketed_by_bastar_and_eg(self, small_dc):
        """BA* (admissible, exhaustive) <= DBA* <= EG on the same input.

        DBA* explores with the informative (quasi-admissible) estimate, so
        it may miss BA*'s optimum, but it can never do worse than its EG
        incumbent.
        """
        state = DataCenterState(small_dc)
        apply_random_load(state, fraction_hosts=0.3, seed=2)
        topo = make_three_tier(web=2, app=1, db=2)
        objective = Objective.for_topology(topo, small_dc)
        eg = EG().place(topo, small_dc, state, objective)
        ba = BAStar().place(topo, small_dc, state, objective)
        dba = DBAStar(deadline_s=30.0).place(topo, small_dc, state, objective)
        assert ba.objective_value <= dba.objective_value + 1e-9
        assert dba.objective_value <= eg.objective_value + 1e-9


class TestDeadline:
    def test_returns_within_deadline(self, small_dc):
        state = DataCenterState(small_dc)
        apply_random_load(state, fraction_hosts=0.5, seed=3)
        topo = make_three_tier(web=4, app=4, db=3)
        deadline = 0.3
        start = time.perf_counter()
        result = DBAStar(deadline_s=deadline).place(topo, small_dc, state)
        elapsed = time.perf_counter() - start
        # generous slack: one expansion can overshoot slightly
        assert elapsed < deadline * 5 + 1.0
        assert set(result.placement.assignments) == set(topo.nodes)

    def test_tiny_deadline_still_returns_placement(self, small_dc):
        topo = make_three_tier()
        result = DBAStar(deadline_s=0.001).place(topo, small_dc)
        assert set(result.placement.assignments) == set(topo.nodes)

    def test_deterministic_for_seed(self, small_dc):
        state = DataCenterState(small_dc)
        apply_random_load(state, fraction_hosts=0.4, seed=5)
        topo = make_three_tier()
        a = DBAStar(deadline_s=10.0, seed=42).place(topo, small_dc, state)
        b = DBAStar(deadline_s=10.0, seed=42).place(topo, small_dc, state)
        assert a.placement.assignments == b.placement.assignments


class TestPruningController:
    def test_prune_probability_respects_progress(self):
        dba = DBAStar(deadline_s=1.0, seed=1)
        dba._r = 1.0
        # complete paths (progress 1.0) are never pruned
        assert not any(dba._should_prune_pop(10, 10) for _ in range(100))
        # shallow paths get pruned sometimes
        assert any(dba._should_prune_pop(0, 10) for _ in range(100))

    def test_no_pruning_when_r_zero(self):
        dba = DBAStar(deadline_s=1.0)
        dba._r = 0.0
        assert not any(dba._should_prune_pop(0, 10) for _ in range(100))

    def test_recalibrate_raises_r_under_pressure(self):
        from collections import Counter

        dba = DBAStar(deadline_s=10.0)
        dba._t_start = time.perf_counter() - 9.99  # nearly out of time
        dba._pops = 1000
        dba._avg_branching = 10.0
        open_depths = Counter({1: 5000, 2: 3000})
        r_before = dba._r
        dba._recalibrate(time.perf_counter(), open_depths)
        assert dba._r > r_before

    def test_estimate_paths_left_zero_when_empty(self):
        from collections import Counter

        dba = DBAStar(deadline_s=1.0)
        assert dba._estimate_paths_left(Counter()) == 0.0

    def test_estimate_recurrence_hand_computed(self):
        """|P_left| against a hand-computed histogram.

        r = 1.0, |P|-bar = 3, open queue = 6 paths at depth 1, so
        horizon = 2 and survive = [0.0, 0.5, 1.0] by depth:

        * depth 1: 6 * 0.5 = 3 surviving pops
        * depth 2: those 3 spawn 3 * 3 = 9 children, culled at the
          *children's* depth-2 rate (1.0) before insertion -> 9 pops

        Total 3 + 9 = 12. The old recurrence applied the parent's
        depth-1 survival a second time to the children (3 * 0.5 * 3 =
        4.5 -> total 7.5), under-estimating |P_left| and letting the
        controller keep r too low under deadline pressure.
        """
        from collections import Counter

        dba = DBAStar(deadline_s=1.0)
        dba._r = 1.0
        dba._avg_branching = 3.0
        estimate = dba._estimate_paths_left(Counter({1: 6}))
        assert estimate == pytest.approx(12.0)
