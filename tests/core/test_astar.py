"""Tests for BA* (bounded A*)."""

from __future__ import annotations

import pytest

from repro.core.astar import BAStar, node_equivalence_classes
from repro.core.greedy import EG
from repro.core.objective import Objective
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_datacenter
from repro.datacenter.loadgen import apply_random_load
from repro.datacenter.model import Level
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from tests.conftest import make_three_tier
from tests.core.test_greedy import verify_placement_feasible


class TestEquivalenceClasses:
    def test_identical_unlinked_nodes_merge(self):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        t.add_vm("c", 2, 2)
        classes = node_equivalence_classes(t)
        assert classes["a"] == classes["b"]
        assert classes["a"] != classes["c"]

    def test_zone_membership_separates(self):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        t.add_vm("c", 1, 1)
        t.add_zone("z", Level.HOST, ["a", "b"])
        classes = node_equivalence_classes(t)
        assert classes["a"] == classes["b"]  # same zone set
        assert classes["a"] != classes["c"]

    def test_neighbor_structure_separates(self):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        t.add_vm("hub", 2, 2)
        t.connect("a", "hub", 100)
        classes = node_equivalence_classes(t)
        assert classes["a"] != classes["b"]

    def test_mutually_linked_twins_merge(self):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        t.add_vm("hub", 2, 2)
        t.connect("a", "hub", 100)
        t.connect("b", "hub", 100)
        classes = node_equivalence_classes(t)
        assert classes["a"] == classes["b"]

    def test_pair_linked_to_each_other(self):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        t.connect("a", "b", 100)
        classes = node_equivalence_classes(t)
        assert classes["a"] == classes["b"]


class TestBAStar:
    def test_feasible_and_complete(self, three_tier, small_dc):
        base = DataCenterState(small_dc)
        result = BAStar().place(three_tier, small_dc, base)
        assert set(result.placement.assignments) == set(three_tier.nodes)
        verify_placement_feasible(three_tier, small_dc, base, result.placement)

    def test_never_worse_than_eg(self, small_dc):
        # BA* bounds itself with EG, so its objective can't be worse.
        for seed in range(4):
            state = DataCenterState(small_dc)
            apply_random_load(state, fraction_hosts=0.4, seed=seed)
            topo = make_three_tier(web=2, app=2, db=2)
            objective = Objective.for_topology(topo, small_dc)
            eg = EG().place(topo, small_dc, state, objective)
            bastar = BAStar().place(topo, small_dc, state, objective)
            assert (
                bastar.objective_value <= eg.objective_value + 1e-9
            ), f"seed={seed}"

    def test_finds_optimal_on_tiny_instance(self):
        cloud = build_datacenter(num_racks=2, hosts_per_rack=2)
        t = ApplicationTopology()
        t.add_vm("a", 10, 10)
        t.add_vm("b", 10, 10)
        t.add_vm("c", 2, 2)
        t.connect("a", "b", 100)
        t.connect("b", "c", 40)
        t.add_zone("z", Level.HOST, ["a", "b"])
        result = BAStar().place(t, cloud)
        # optimum: a,b in same rack (2 hops for the 100 Mbps link),
        # c co-located with b (0 hops)
        assert result.reserved_bw_mbps == 100 * 2
        assert result.new_active_hosts == 2

    def test_symmetry_reduction_preserves_value(self, small_dc):
        topo = make_three_tier(web=2, app=2, db=2)
        state = DataCenterState(small_dc)
        apply_random_load(state, fraction_hosts=0.3, seed=1)
        objective = Objective.for_topology(topo, small_dc)
        with_sym = BAStar(symmetry_reduction=True).place(
            topo, small_dc, state, objective
        )
        without = BAStar(symmetry_reduction=False).place(
            topo, small_dc, state, objective
        )
        assert with_sym.objective_value == pytest.approx(
            without.objective_value, abs=1e-9
        )

    def test_expansion_cap_returns_incumbent(self, three_tier, small_dc):
        result = BAStar(max_expansions=1).place(three_tier, small_dc)
        assert set(result.placement.assignments) == set(three_tier.nodes)

    def test_infeasible_raises(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("huge", 1000, 1000)
        with pytest.raises(PlacementError):
            BAStar().place(t, small_dc)

    def test_stats_populated(self, three_tier, small_dc):
        result = BAStar().place(three_tier, small_dc)
        assert result.stats.eg_bound_runs >= 1
        assert result.stats.runtime_s > 0

    def test_input_state_not_mutated(self, three_tier, small_dc):
        state = DataCenterState(small_dc)
        before = state.snapshot()
        BAStar().place(three_tier, small_dc, state)
        assert state.snapshot() == before

    def test_respects_pinned(self, three_tier, small_dc):
        result = BAStar().place(
            three_tier, small_dc, pinned={"web0": (9, None)}
        )
        assert result.placement.host_of("web0") == 9
