"""Tests for EG, EGC, and EGBW."""

from __future__ import annotations

import pytest

from repro.core.greedy import (
    EG,
    EGBW,
    EGC,
    GreedyConfig,
    sort_nodes_by_relative_weight,
)
from repro.core.objective import Objective
from repro.core.topology import ApplicationTopology
from repro.datacenter.loadgen import apply_testbed_load
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from tests.conftest import make_three_tier

ALGORITHMS = [EG(), EGC(), EGBW()]


def verify_placement_feasible(topology, cloud, base_state, placement):
    """Assert a placement passes the library's independent validator.

    Thin wrapper over :func:`repro.core.validate.validate_placement`,
    shared by many test modules.
    """
    from repro.core.validate import validate_placement

    validate_placement(topology, cloud, base_state, placement)


class TestSorting:
    def test_relative_weight_order(self):
        t = ApplicationTopology()
        t.add_vm("small", 1, 1)
        t.add_vm("big", 8, 8)
        assert sort_nodes_by_relative_weight(t) == ["big", "small"]

    def test_bandwidth_contributes_to_weight(self):
        t = ApplicationTopology()
        t.add_vm("quiet", 2, 2)
        t.add_vm("chatty", 2, 2)
        t.add_vm("peer", 2, 2)
        t.connect("chatty", "peer", 1000)
        order = sort_nodes_by_relative_weight(t)
        assert order.index("chatty") < order.index("quiet")

    def test_deterministic_tie_break(self):
        t = ApplicationTopology()
        t.add_vm("b", 1, 1)
        t.add_vm("a", 1, 1)
        assert sort_nodes_by_relative_weight(t) == ["a", "b"]


@pytest.mark.parametrize("algo", ALGORITHMS, ids=lambda a: a.name)
class TestAllGreedy:
    def test_places_every_node(self, algo, three_tier, small_dc):
        result = algo.place(three_tier, small_dc)
        assert set(result.placement.assignments) == set(three_tier.nodes)

    def test_placement_is_feasible(self, algo, three_tier, small_dc):
        base = DataCenterState(small_dc)
        result = algo.place(three_tier, small_dc, base)
        verify_placement_feasible(
            three_tier, small_dc, base, result.placement
        )

    def test_input_state_not_mutated(self, algo, three_tier, small_dc):
        state = DataCenterState(small_dc)
        before = state.snapshot()
        algo.place(three_tier, small_dc, state)
        assert state.snapshot() == before

    def test_infeasible_raises(self, algo, small_dc):
        t = ApplicationTopology()
        t.add_vm("huge", 100, 100)
        with pytest.raises(PlacementError):
            algo.place(t, small_dc)

    def test_respects_pinned(self, algo, three_tier, small_dc):
        pinned = {"web0": (7, None)}
        result = algo.place(three_tier, small_dc, pinned=pinned)
        assert result.placement.host_of("web0") == 7


class TestEG:
    def test_colocates_linked_nodes_when_possible(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 500)
        result = EG().place(t, small_dc)
        assert result.reserved_bw_mbps == 0.0
        assert result.new_active_hosts == 1

    def test_prefers_active_hosts_under_host_weight(self, testbed):
        state = DataCenterState(testbed)
        apply_testbed_load(state, seed=0)
        t = ApplicationTopology()
        t.add_vm("x", 2, 2)
        obj = Objective.for_topology(t, testbed, theta_bw=0.6, theta_c=0.4)
        result = EG().place(t, testbed, state, obj)
        host = result.placement.host_of("x")
        assert state.host_is_active(host)
        assert result.new_active_hosts == 0

    def test_diversity_zone_respected(self, small_dc):
        t = make_three_tier(db=3)
        result = EG().place(t, small_dc)
        hosts = {result.placement.host_of(f"db{i}") for i in range(3)}
        assert len(hosts) == 3

    def test_dedup_matches_exhaustive(self, three_tier, small_dc):
        base = DataCenterState(small_dc)
        with_dedup = EG(GreedyConfig(dedup=True)).place(
            three_tier, small_dc, base
        )
        without = EG(GreedyConfig(dedup=False)).place(
            three_tier, small_dc, base
        )
        assert with_dedup.objective_value == pytest.approx(
            without.objective_value
        )
        assert with_dedup.reserved_bw_mbps == pytest.approx(
            without.reserved_bw_mbps
        )
        assert with_dedup.new_active_hosts == without.new_active_hosts

    def test_candidate_preselection_still_feasible(self, three_tier, small_dc):
        config = GreedyConfig(max_full_candidates=2)
        base = DataCenterState(small_dc)
        result = EG(config).place(three_tier, small_dc, base)
        verify_placement_feasible(three_tier, small_dc, base, result.placement)


class TestEGC:
    def test_packs_tightest_host_first(self, small_dc):
        state = DataCenterState(small_dc)
        state.place_vm(3, 10, 20)  # host 3 is tightest but still fits
        t = ApplicationTopology()
        t.add_vm("x", 4, 4)
        result = EGC().place(t, small_dc, state)
        assert result.placement.host_of("x") == 3

    def test_ignores_links_when_packing(self, testbed):
        state = DataCenterState(testbed)
        apply_testbed_load(state, seed=0)
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 100)
        result = EGC().place(t, testbed, state)
        # both go to constrained hosts regardless of the link
        for name in ("a", "b"):
            assert state.free_cpu[result.placement.host_of(name)] < 5

    def test_volume_on_fullest_disk(self, small_dc):
        state = DataCenterState(small_dc)
        state.place_volume(2, 800)
        t = ApplicationTopology()
        t.add_vm("vm", 1, 1)
        t.add_volume("vol", 100)
        t.connect("vm", "vol", 10)
        result = EGC().place(t, small_dc, state)
        assert result.placement.disk_of("vol") == 2


class TestEGBW:
    def test_colocates_linked_nodes(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 500)
        result = EGBW().place(t, small_dc)
        assert result.reserved_bw_mbps == 0.0

    def test_prefers_idle_high_bandwidth_hosts(self, testbed):
        state = DataCenterState(testbed)
        apply_testbed_load(state, seed=0)
        t = ApplicationTopology()
        t.add_vm("x", 2, 2)
        result = EGBW().place(t, testbed, state)
        # idle hosts have the most free NIC bandwidth
        assert not state.host_is_active(result.placement.host_of("x"))
        assert result.new_active_hosts == 1
