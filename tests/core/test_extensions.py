"""Tests for the Section-VI extensions: latency-bounded pipes and
guaranteed / best-effort CPU policies."""

from __future__ import annotations

import pytest

from repro.core import constraints
from repro.core.candidates import candidate_targets
from repro.core.greedy import EG
from repro.core.placement import PartialPlacement
from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError, TopologyError
from repro.heat.template import template_from_topology, topology_from_template


def make_partial(topo, cloud, state=None):
    return PartialPlacement(
        topo, state or DataCenterState(cloud), PathResolver(cloud)
    )


class TestLatencyBoundedPipes:
    def _pair(self, max_hops):
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 100, max_hops=max_hops)
        return t

    def test_zero_hops_forces_colocation(self, small_dc):
        topo = self._pair(max_hops=0)
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)
        targets = candidate_targets(partial, "b", dedup=False)
        assert [t.host for t in targets] == [0]

    def test_two_hops_allows_same_rack_only(self, small_dc):
        topo = self._pair(max_hops=2)
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)
        targets = candidate_targets(partial, "b", dedup=False)
        # rack of host 0 holds hosts 0..3 in the 4x4 small_dc
        assert {t.host for t in targets} == {0, 1, 2, 3}

    def test_latency_ok_helper(self, small_dc):
        topo = self._pair(max_hops=2)
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)
        assert constraints.latency_ok(partial, "b", 1)
        assert not constraints.latency_ok(partial, "b", 4)

    def test_unbounded_pipe_unconstrained(self, small_dc):
        topo = self._pair(max_hops=None)
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)
        targets = candidate_targets(partial, "b", dedup=False)
        assert len(targets) == small_dc.num_hosts

    def test_eg_honors_latency(self, small_dc):
        topo = self._pair(max_hops=2)
        # make co-location impossible: a fills most of every host's CPU
        topo.remove_node("a")
        topo.add_vm("a", 14, 4)
        topo.connect("a", "b", 100, max_hops=2)
        result = EG().place(topo, small_dc)
        a_host = result.placement.host_of("a")
        b_host = result.placement.host_of("b")
        assert small_dc.hop_count(a_host, b_host) <= 2

    def test_unsatisfiable_latency_raises(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 14, 4)
        t.add_vm("b", 14, 4)  # cannot co-locate (28 > 16 cores)
        t.connect("a", "b", 100, max_hops=0)  # but must
        with pytest.raises(PlacementError):
            EG().place(t, small_dc)

    def test_negative_max_hops_rejected(self):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        with pytest.raises(TopologyError):
            t.connect("a", "b", 10, max_hops=-1)

    def test_template_roundtrip_preserves_max_hops(self, small_dc):
        topo = self._pair(max_hops=2)
        back = topology_from_template(template_from_topology(topo))
        assert back.link_between("a", "b").max_hops == 2


class TestCpuPolicies:
    def test_best_effort_reserves_discounted_cpu(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("burst", 8, 4, cpu_policy="best_effort")
        state = DataCenterState(small_dc, best_effort_cpu_factor=0.5)
        partial = PartialPlacement(t, state, PathResolver(small_dc))
        partial.assign("burst", 0)
        assert partial.state.free_cpu[0] == 16 - 4  # 8 * 0.5

    def test_guaranteed_reserves_full_cpu(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("strict", 8, 4)
        partial = make_partial(t, small_dc)
        partial.assign("strict", 0)
        assert partial.state.free_cpu[0] == 8

    def test_best_effort_packs_denser(self, small_dc):
        """Three 8-vCPU best-effort VMs fit one 16-core host at factor 0.5;
        guaranteed ones need two hosts."""
        def build(policy):
            t = ApplicationTopology(f"pack-{policy}")
            for i in range(3):
                t.add_vm(f"vm{i}", 8, 2, cpu_policy=policy)
            t.connect("vm0", "vm1", 10)
            t.connect("vm1", "vm2", 10)
            return t

        best_effort = EG().place(build("best_effort"), small_dc)
        guaranteed = EG().place(build("guaranteed"), small_dc)
        assert best_effort.placement.hosts_used == 1
        assert guaranteed.placement.hosts_used == 2

    def test_unknown_policy_rejected(self):
        t = ApplicationTopology()
        with pytest.raises(TopologyError, match="cpu_policy"):
            t.add_vm("x", 1, 1, cpu_policy="turbo")

    def test_scheduler_commit_and_remove_roundtrip(self, small_dc):
        ostro = Ostro(small_dc)
        t = ApplicationTopology("be-app")
        t.add_vm("burst", 8, 4, cpu_policy="best_effort")
        t.add_vm("strict", 4, 4)
        snapshot = ostro.state.snapshot()
        ostro.place(t, algorithm="eg")
        ostro.remove("be-app")
        assert ostro.state.snapshot() == snapshot

    def test_template_roundtrip_preserves_policy(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("burst", 8, 4, cpu_policy="best_effort")
        t.add_vm("strict", 4, 4)
        back = topology_from_template(template_from_topology(t))
        assert back.node("burst").cpu_policy == "best_effort"
        assert back.node("strict").cpu_policy == "guaranteed"


class TestLinkUniqueness:
    def test_duplicate_link_rejected(self):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        t.connect("a", "b", 10)
        with pytest.raises(TopologyError, match="duplicate link"):
            t.connect("b", "a", 20)

    def test_link_between_lookup(self):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        t.add_vm("c", 1, 1)
        link = t.connect("a", "b", 10)
        assert t.link_between("a", "b") is link
        assert t.link_between("b", "a") is link
        assert t.link_between("a", "c") is None
