"""Tests for the normalized objective function."""

from __future__ import annotations

import pytest

from repro.core.objective import Objective
from repro.core.topology import ApplicationTopology
from repro.errors import TopologyError


def _topo_with_links():
    t = ApplicationTopology()
    t.add_vm("a", 1, 1)
    t.add_vm("b", 1, 1)
    t.connect("a", "b", 100)
    return t


class TestWeights:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(TopologyError):
            Objective(theta_bw=0.5, theta_c=0.6, ubw_hat=1, uc_hat=1)

    def test_negative_weight_rejected(self):
        with pytest.raises(TopologyError):
            Objective(theta_bw=-0.1, theta_c=1.1, ubw_hat=1, uc_hat=1)


class TestScore:
    def test_zero_usage_scores_zero(self):
        obj = Objective(0.6, 0.4, ubw_hat=1000, uc_hat=10)
        assert obj.score(0, 0) == 0.0

    def test_worst_case_scores_one(self):
        obj = Objective(0.6, 0.4, ubw_hat=1000, uc_hat=10)
        assert obj.score(1000, 10) == pytest.approx(1.0)

    def test_monotone_in_both_terms(self):
        obj = Objective(0.6, 0.4, ubw_hat=1000, uc_hat=10)
        assert obj.score(100, 1) < obj.score(200, 1)
        assert obj.score(100, 1) < obj.score(100, 2)

    def test_no_links_bw_term_vanishes(self):
        obj = Objective(0.6, 0.4, ubw_hat=0, uc_hat=10)
        assert obj.score(0, 5) == pytest.approx(0.4 * 0.5)


class TestForTopology:
    def test_normalizers(self, small_dc):
        topo = _topo_with_links()
        obj = Objective.for_topology(topo, small_dc)
        # worst case: 100 Mbps across the 4-hop maximum path
        assert obj.ubw_hat == 100 * 4
        assert obj.uc_hat == 2

    def test_uc_hat_bounded_by_hosts(self, small_dc):
        topo = ApplicationTopology()
        for i in range(100):
            topo.add_vm(f"v{i}", 1, 1)
        obj = Objective.for_topology(topo, small_dc)
        assert obj.uc_hat == small_dc.num_hosts

    def test_paper_default_weights(self, small_dc):
        obj = Objective.for_topology(_topo_with_links(), small_dc)
        assert obj.theta_bw == 0.6
        assert obj.theta_c == 0.4

    def test_scores_in_unit_interval(self, small_dc):
        topo = _topo_with_links()
        obj = Objective.for_topology(topo, small_dc)
        assert 0.0 <= obj.score(150, 1) <= 1.0
