"""Cross-kernel bit-exactness: numpy scoring must equal the reference.

The array kernel (:mod:`repro.core.kernel`) promises *bit-identical*
results to the pure-Python reference -- same scores, same candidate
sets, same placements -- because it replays the same float operations in
the same order. These tests drive both kernels over fixed and
hypothesis-generated inputs and compare everything observable:
objective values, placement fingerprints, and the deterministic work
counters. The ``crosscheck`` kernel additionally asserts equality at
every internal comparison point and raises :class:`KernelMismatch` on
the first divergence, so merely completing a crosscheck run is itself
the strongest assertion.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernel
from repro.core.astar import BAStar
from repro.core.greedy import EG, EGBW, EGC
from repro.core.objective import Objective
from repro.datacenter.loadgen import apply_random_load
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from tests.conftest import make_three_tier
from tests.test_properties import small_cloud, topologies

pytestmark = pytest.mark.skipif(
    not kernel.HAVE_NUMPY, reason="numpy kernel unavailable"
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _placement_blob(result):
    return sorted(
        (a.node, a.host, a.disk)
        for a in result.placement.assignments.values()
    )


def _run(algorithm, topo, cloud, state, kernel_name):
    with kernel.use_kernel(kernel_name):
        return algorithm.place(topo, cloud, state)


class TestKernelSelection:
    def test_set_kernel_rejects_unknown(self):
        with pytest.raises(ValueError):
            kernel.set_kernel("fortran")

    def test_use_kernel_restores_previous(self):
        before = kernel.get_kernel()
        with kernel.use_kernel("python"):
            assert kernel.get_kernel() == "python"
        assert kernel.get_kernel() == before

    def test_crosscheck_implies_numpy_active(self):
        with kernel.use_kernel("crosscheck"):
            assert kernel.numpy_active()
            assert kernel.crosscheck_active()
        with kernel.use_kernel("python"):
            assert not kernel.numpy_active()


class TestFixedTopologyEquivalence:
    @pytest.mark.parametrize("algo_factory", [
        EG, EGC, EGBW, lambda: BAStar(max_expansions=200),
    ])
    def test_three_tier_bit_identical(self, small_dc, algo_factory):
        topo = make_three_tier()
        state = DataCenterState(small_dc)
        apply_random_load(state, fraction_hosts=0.3, seed=7)
        results = {
            name: _run(algo_factory(), topo, small_dc, state, name)
            for name in ("python", "numpy")
        }
        py, np_ = results["python"], results["numpy"]
        assert py.objective_value == np_.objective_value
        assert _placement_blob(py) == _placement_blob(np_)
        assert py.stats.candidates_scored == np_.stats.candidates_scored
        assert py.stats.paths_expanded == np_.stats.paths_expanded

    def test_three_tier_crosscheck_clean(self, small_dc):
        topo = make_three_tier()
        state = DataCenterState(small_dc)
        apply_random_load(state, fraction_hosts=0.3, seed=7)
        # KernelMismatch (an AssertionError) would propagate out of place()
        result = _run(BAStar(max_expansions=200), topo, small_dc, state,
                      "crosscheck")
        assert set(result.placement.assignments) == set(topo.nodes)


class TestReferenceScenarioFingerprints:
    """The bench scenarios' placements must not depend on the kernel."""

    @pytest.mark.parametrize("scenario", ["multitier", "mesh", "qfs"])
    def test_bench_scenario_bit_identical(self, scenario):
        from repro import bench

        case = next(c for c in bench.REFERENCE_CASES if c.name == scenario)
        label, algorithm, opt_items, _gated = case.algorithms[0]  # EG
        assert label == "eg"
        fingerprints = {}
        for name in ("python", "numpy"):
            with kernel.use_kernel(name):
                result, _wall = bench._run_once(
                    case, algorithm, dict(opt_items)
                )
            fingerprints[name] = bench.placement_fingerprint(result)
        assert fingerprints["python"] == fingerprints["numpy"]

    def test_vnf_chain_bit_identical(self, small_dc):
        from repro.workloads.vnf import build_vnf_chain

        topo = build_vnf_chain()
        state = DataCenterState(small_dc)
        apply_random_load(state, fraction_hosts=0.2, seed=11)
        py = _run(EG(), topo, small_dc, state, "python")
        np_ = _run(EG(), topo, small_dc, state, "numpy")
        assert py.objective_value == np_.objective_value
        assert _placement_blob(py) == _placement_blob(np_)


class TestPropertyEquivalence:
    @SETTINGS
    @given(topo=topologies(), seed=st.integers(0, 50), algo_i=st.integers(0, 2))
    def test_greedy_placements_bit_identical(self, topo, seed, algo_i):
        cloud = small_cloud()
        state = DataCenterState(cloud)
        apply_random_load(state, fraction_hosts=0.4, seed=seed)
        algo_factory = [EG, EGC, EGBW][algo_i]
        outcomes = {}
        for name in ("python", "numpy"):
            try:
                outcomes[name] = _run(algo_factory(), topo, cloud, state, name)
            except PlacementError:
                outcomes[name] = None
        py, np_ = outcomes["python"], outcomes["numpy"]
        if py is None or np_ is None:
            assert py is None and np_ is None
            return
        assert py.objective_value == np_.objective_value
        assert _placement_blob(py) == _placement_blob(np_)
        assert py.stats.candidates_scored == np_.stats.candidates_scored

    @SETTINGS
    @given(topo=topologies(max_vms=4, max_volumes=2), seed=st.integers(0, 20))
    def test_bastar_placements_bit_identical(self, topo, seed):
        cloud = small_cloud()
        state = DataCenterState(cloud)
        apply_random_load(state, fraction_hosts=0.3, seed=seed)
        outcomes = {}
        for name in ("python", "numpy"):
            try:
                outcomes[name] = _run(
                    BAStar(max_expansions=150), topo, cloud, state, name
                )
            except PlacementError:
                outcomes[name] = None
        py, np_ = outcomes["python"], outcomes["numpy"]
        if py is None or np_ is None:
            assert py is None and np_ is None
            return
        assert py.objective_value == np_.objective_value
        assert _placement_blob(py) == _placement_blob(np_)
        assert py.stats.paths_expanded == np_.stats.paths_expanded

    @SETTINGS
    @given(topo=topologies(max_vms=5, max_volumes=2), seed=st.integers(0, 30))
    def test_crosscheck_never_trips(self, topo, seed):
        cloud = small_cloud()
        state = DataCenterState(cloud)
        apply_random_load(state, fraction_hosts=0.4, seed=seed)
        objective = Objective.for_topology(topo, cloud)
        try:
            with kernel.use_kernel("crosscheck"):
                EG().place(topo, cloud, state, objective)
        except PlacementError:
            pass  # infeasible inputs may fail; KernelMismatch must not
