"""Property-based tests for the migration planner."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy import EG, EGBW, EGC
from repro.core.migration import apply_plan, plan_migration
from repro.core.scheduler import Ostro
from repro.core.validate import placement_violations
from repro.datacenter.builder import build_datacenter
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from tests.test_properties import topologies

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMigrationProperties:
    @SETTINGS
    @given(
        topo=topologies(max_vms=4, max_volumes=1),
        seed=st.integers(0, 20),
        algo_pair=st.sampled_from([(0, 1), (1, 0), (2, 0), (0, 2)]),
    )
    def test_plan_between_algorithm_outputs_is_executable(
        self, topo, seed, algo_pair
    ):
        """Any two algorithms' placements of the same app are connected by
        an executable plan, and executing it yields a state from which the
        app can be cleanly removed."""
        algorithms = [EG(), EGC(), EGBW()]
        cloud = build_datacenter(num_racks=3, hosts_per_rack=3)
        base = DataCenterState(cloud)
        try:
            old = algorithms[algo_pair[0]].place(topo, cloud, base)
            new = algorithms[algo_pair[1]].place(topo, cloud, base)
        except PlacementError:
            return
        ostro = Ostro(cloud)
        ostro.commit(topo, old.placement)
        try:
            plan = plan_migration(
                topo, ostro.state, old.placement, new.placement
            )
        except PlacementError:
            return  # no safe one-at-a-time sequence exists: acceptable
        apply_plan(topo, ostro.state, old.placement, plan)
        # the final state equals "new placement committed on fresh state"
        reference = Ostro(cloud)
        reference.commit(topo, new.placement)
        assert ostro.state.snapshot() == reference.state.snapshot()
        # and the new placement validates against a pristine base
        assert (
            placement_violations(topo, cloud, DataCenterState(cloud), new.placement)
            == []
        )

    @SETTINGS
    @given(topo=topologies(max_vms=3, max_volumes=1), seed=st.integers(0, 10))
    def test_plan_is_idempotent_on_identical_placements(self, topo, seed):
        cloud = build_datacenter(num_racks=2, hosts_per_rack=3)
        base = DataCenterState(cloud)
        try:
            result = EG().place(topo, cloud, base)
        except PlacementError:
            return
        ostro = Ostro(cloud)
        ostro.commit(topo, result.placement)
        plan = plan_migration(
            topo, ostro.state, result.placement, result.placement
        )
        assert len(plan) == 0
