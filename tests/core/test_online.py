"""Tests for online adaptation (Section IV-E)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.online import add_vms_to_tier, diff_topologies
from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.errors import PlacementError
from tests.conftest import make_three_tier


@pytest.fixture
def recorder():
    rec = obs.enable()
    yield rec
    obs.disable()


def deploy_three_tier(small_dc):
    ostro = Ostro(small_dc)
    topo = make_three_tier()
    ostro.place(topo, algorithm="eg")
    return ostro, topo


class TestDiff:
    def test_added_removed_changed(self):
        old = make_three_tier()
        new = old.copy()
        new.remove_node("web1")
        new.add_vm("cache0", 2, 4)
        added, removed, changed = diff_topologies(old, new)
        assert added == ["cache0"]
        assert removed == ["web1"]
        assert changed == []

    def test_requirement_change_detected(self):
        old = make_three_tier()
        new = make_three_tier()
        new.remove_node("web0")
        new.add_vm("web0", 8, 8)  # resized
        _, _, changed = diff_topologies(old, new)
        assert changed == ["web0"]


class TestUpdate:
    def test_add_vms_keeps_existing_in_place(self, small_dc):
        ostro, topo = deploy_three_tier(small_dc)
        old_placement = ostro.deployed(topo.name).placement
        grown = topo.copy()
        grown.add_vm("web2", 1, 1)
        grown.connect("web2", "app0", 100)
        update = ostro.update(grown, algorithm="eg")
        assert update.added == ["web2"]
        assert update.moved == []
        assert update.unpin_rounds == 0
        for name in topo.nodes:
            assert update.result.placement.host_of(name) == old_placement.host_of(
                name
            )

    def test_remove_vm_releases_capacity(self, small_dc):
        ostro, topo = deploy_three_tier(small_dc)
        shrunk = topo.copy()
        shrunk.remove_node("web1")
        update = ostro.update(shrunk, algorithm="eg")
        assert update.removed == ["web1"]
        assert "web1" not in update.result.placement.assignments

    def test_update_result_committed(self, small_dc):
        ostro, topo = deploy_three_tier(small_dc)
        grown = topo.copy()
        grown.add_vm("extra", 2, 2)
        grown.connect("extra", "db0", 50)
        ostro.update(grown, algorithm="eg")
        deployed = ostro.deployed(topo.name)
        assert "extra" in deployed.placement.assignments

    def test_unknown_app_raises(self, small_dc):
        ostro = Ostro(small_dc)
        with pytest.raises(PlacementError):
            ostro.update(make_three_tier(), algorithm="eg")

    def test_infeasible_update_restores_original(self, small_dc):
        ostro, topo = deploy_three_tier(small_dc)
        snapshot = ostro.state.snapshot()
        impossible = topo.copy()
        impossible.add_vm("monster", 1000, 1000)
        with pytest.raises(PlacementError):
            ostro.update(impossible, algorithm="eg")
        assert ostro.state.snapshot() == snapshot
        assert set(ostro.deployed(topo.name).placement.assignments) == set(
            topo.nodes
        )

    def test_unpinning_when_pins_block(self, small_dc):
        """Force repositioning: the added VM needs more bandwidth to its
        pinned neighbor than the neighbor's host NIC has left, so the
        neighbor must move (unpin) for the update to go through."""
        ostro = Ostro(small_dc)
        topo = ApplicationTopology("pair")
        topo.add_vm("a", 8, 8)
        topo.add_vm("b", 1, 1)
        ostro.place(topo, algorithm="eg")
        placement = ostro.deployed("pair").placement
        host_a = placement.host_of("a")
        spare = next(
            h for h in range(small_dc.num_hosts)
            if not ostro.state.host_is_active(h)
        )
        # exhaust a's host: no CPU for a newcomer, NIC below the new demand
        ostro.state.place_vm(host_a, ostro.state.free_cpu[host_a], 0.5)
        nic_a = small_dc.hosts[host_a].link_index
        ostro.state.reserve_path((nic_a,), ostro.state.free_bw[nic_a] - 1000)
        # fill every host except a's, b's, and one spare
        keep_free = {host_a, placement.host_of("b"), spare}
        for h in range(small_dc.num_hosts):
            if h not in keep_free:
                ostro.state.place_vm(
                    h, ostro.state.free_cpu[h], ostro.state.free_mem[h]
                )
        grown = topo.copy()
        grown.add_vm("c", 8, 8)
        grown.connect("c", "a", 6000)  # exceeds a's remaining NIC headroom
        update = ostro.update(grown, algorithm="eg")
        assert "c" in update.result.placement.assignments
        assert update.unpin_rounds >= 1
        assert "a" in update.moved
        # a and c ended up co-located (the only way to carry 6 Gbps)
        assert update.result.placement.host_of(
            "a"
        ) == update.result.placement.host_of("c")

    def test_failed_update_records_telemetry(self, small_dc, recorder):
        ostro, topo = deploy_three_tier(small_dc)
        impossible = topo.copy()
        impossible.add_vm("monster", 1000, 1000)
        with pytest.raises(PlacementError):
            ostro.update(impossible, algorithm="eg")
        assert (
            recorder.registry.get("ostro_update_failures_total").value() == 1
        )
        (event,) = recorder.events.of_type("update_failed")
        assert event.fields["app"] == topo.name
        assert event.fields["added"] == 1
        assert "unpin_rounds" in event.fields
        assert recorder.events.count("update_applied") == 0

    def test_saturated_frontier_unpins_everything(self, small_dc):
        """An isolated added VM has no neighbors, so the first frontier
        expansion cannot grow the unpinned set -- the fallback must jump
        straight to a full unpin (and succeed by moving the pinned VM)."""
        ostro = Ostro(small_dc)
        topo = ApplicationTopology("solo")
        topo.add_vm("a", 8, 8)
        ostro.place(topo, algorithm="eg")
        host_a = ostro.deployed("solo").placement.host_of("a")
        spare = next(
            h
            for h in range(small_dc.num_hosts)
            if h != host_a and not ostro.state.host_is_active(h)
        )
        # every host fills up except a's (8 cores left) and one spare
        # with exactly 8 free: the isolated 12-core newcomer only fits on
        # a's host once a itself moves to the spare
        for h in range(small_dc.num_hosts):
            if h == host_a:
                continue
            leave = 8.0 if h == spare else 0.0
            ostro.state.place_vm(
                h, ostro.state.free_cpu[h] - leave, ostro.state.free_mem[h] / 2
            )
        grown = topo.copy()
        grown.add_vm("c", 12, 8)  # isolated: no links to a
        update = ostro.update(grown, algorithm="eg")
        assert update.unpin_rounds == 1
        assert update.moved == ["a"]
        assert update.result.placement.host_of("c") == host_a
        assert update.result.placement.host_of("a") == spare

    def test_unpin_round_budget_restores_original(self, small_dc, recorder):
        """Exhausting max_unpin_rounds with pins still in place must
        restore the original deployment bit-for-bit and report the rounds
        actually burned."""
        ostro = Ostro(small_dc)
        topo = ApplicationTopology("chain")
        for i in range(6):
            topo.add_vm(f"n{i}", 2, 2)
            if i:
                topo.connect(f"n{i - 1}", f"n{i}", 50)
        ostro.place(topo, algorithm="eg")
        original = dict(ostro.deployed("chain").placement.assignments)
        snapshot = ostro.state.snapshot()
        impossible = topo.copy()
        impossible.add_vm("monster", 1000, 1000)
        impossible.connect("monster", "n0", 10)
        with pytest.raises(PlacementError):
            ostro.update(impossible, algorithm="eg", max_unpin_rounds=2)
        # the budget was really exhausted (not a first-try fall-through)
        (event,) = recorder.events.of_type("update_failed")
        assert event.fields["unpin_rounds"] == 2
        # and the rollback is exact: same state, same assignments, no leak
        assert ostro.state.snapshot() == snapshot
        assert dict(ostro.deployed("chain").placement.assignments) == original
        assert ostro.verify_state() == []

    def test_changed_node_not_counted_as_moved(self, small_dc):
        """A resized node is re-placed by definition; ``moved`` must only
        count *unchanged* nodes whose host shifted."""
        ostro = Ostro(small_dc)
        topo = ApplicationTopology("pair")
        topo.add_vm("x", 2, 2)
        topo.add_vm("y", 2, 2)
        topo.connect("x", "y", 100)
        ostro.place(topo, algorithm="eg")
        y_host = ostro.deployed("pair").placement.host_of("y")
        resized = ApplicationTopology("pair")
        resized.add_vm("x", 1, 1)  # shrunk
        resized.add_vm("y", 2, 2)
        resized.connect("x", "y", 100)
        update = ostro.update(resized, algorithm="eg")
        assert update.changed == ["x"]
        assert update.unpin_rounds == 0
        assert "x" not in update.moved
        assert update.moved == []  # y stayed pinned in place
        assert update.result.placement.host_of("y") == y_host


class TestAddVmsToTier:
    def test_grows_by_fraction(self):
        topo = make_three_tier(web=10)
        grown = add_vms_to_tier(topo, "web", 0.1)
        new = [n for n in grown.nodes if n.startswith("web-extra")]
        assert len(new) == 1

    def test_new_vms_mirror_template_links(self):
        topo = make_three_tier()
        grown = add_vms_to_tier(topo, "web", 0.5)
        template_neighbors = {n for n, _ in topo.neighbors("web0")}
        extra_neighbors = {n for n, _ in grown.neighbors("web-extra1")}
        assert extra_neighbors == template_neighbors

    def test_unknown_prefix_raises(self):
        with pytest.raises(PlacementError):
            add_vms_to_tier(make_three_tier(), "nope", 0.1)

    @pytest.mark.parametrize(
        ("tier_size", "fraction", "expected"),
        [
            (25, 0.10, 3),  # 2.5 -> ceil -> 3, the documented half-way case
            (15, 0.20, 3),  # 3.0000000000000004 in floats: must stay 3
            (10, 0.10, 1),
            (2, 0.50, 1),
            (3, 0.50, 2),  # 1.5 -> 2
            (4, 0.25, 1),
        ],
    )
    def test_ceil_growth(self, tier_size, fraction, expected):
        topo = make_three_tier(web=tier_size)
        grown = add_vms_to_tier(topo, "web", fraction)
        new = [n for n in grown.nodes if n.startswith("web-extra")]
        assert len(new) == expected


class TestZeroDeltaNoOps:
    """Regression: zero-delta elasticity requests must be true no-ops.

    ``add_vms_to_tier`` used to clone the topology even when the
    resolved delta was zero, and an identical-topology update went
    through the full release/re-commit cycle -- both made "nothing to
    do" paths mutate state and emit telemetry.
    """

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fraction": 0.0},
            {"fraction": -0.25},
            {"fraction": 0.9, "count": 0},
            {"fraction": 0.0, "count": -3},
        ],
    )
    def test_zero_delta_growth_returns_input_uncloned(self, kwargs):
        topo = make_three_tier()
        assert add_vms_to_tier(topo, "web", **kwargs) is topo

    def test_identical_topology_update_is_a_no_op(self, small_dc, recorder):
        ostro, topo = deploy_three_tier(small_dc)
        before = ostro.state.snapshot()
        placement_before = ostro.deployed(topo.name).placement
        recorder.events.clear()
        outcome = ostro.update(topo.copy(), algorithm="eg")
        assert ostro.state.snapshot() == before
        assert ostro.deployed(topo.name).placement is placement_before
        assert outcome.added == []
        assert outcome.removed == []
        assert outcome.changed == []
        assert outcome.moved == []
        assert outcome.unpin_rounds == 0
        assert outcome.result.placement is placement_before
        # no search ran, so no telemetry was produced at all
        assert recorder.events.events == []

    def test_no_op_update_reports_current_objective(self, small_dc):
        ostro, topo = deploy_three_tier(small_dc)
        outcome = ostro.update(topo.copy(), algorithm="eg")
        assert outcome.result.objective_value == pytest.approx(
            ostro.update(topo.copy(), algorithm="eg").result.objective_value
        )
