"""Tests for online adaptation (Section IV-E)."""

from __future__ import annotations

import pytest

from repro.core.online import add_vms_to_tier, diff_topologies
from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.errors import PlacementError
from tests.conftest import make_three_tier


def deploy_three_tier(small_dc):
    ostro = Ostro(small_dc)
    topo = make_three_tier()
    ostro.place(topo, algorithm="eg")
    return ostro, topo


class TestDiff:
    def test_added_removed_changed(self):
        old = make_three_tier()
        new = old.copy()
        new.remove_node("web1")
        new.add_vm("cache0", 2, 4)
        added, removed, changed = diff_topologies(old, new)
        assert added == ["cache0"]
        assert removed == ["web1"]
        assert changed == []

    def test_requirement_change_detected(self):
        old = make_three_tier()
        new = make_three_tier()
        new.remove_node("web0")
        new.add_vm("web0", 8, 8)  # resized
        _, _, changed = diff_topologies(old, new)
        assert changed == ["web0"]


class TestUpdate:
    def test_add_vms_keeps_existing_in_place(self, small_dc):
        ostro, topo = deploy_three_tier(small_dc)
        old_placement = ostro.deployed(topo.name).placement
        grown = topo.copy()
        grown.add_vm("web2", 1, 1)
        grown.connect("web2", "app0", 100)
        update = ostro.update(grown, algorithm="eg")
        assert update.added == ["web2"]
        assert update.moved == []
        assert update.unpin_rounds == 0
        for name in topo.nodes:
            assert update.result.placement.host_of(name) == old_placement.host_of(
                name
            )

    def test_remove_vm_releases_capacity(self, small_dc):
        ostro, topo = deploy_three_tier(small_dc)
        shrunk = topo.copy()
        shrunk.remove_node("web1")
        update = ostro.update(shrunk, algorithm="eg")
        assert update.removed == ["web1"]
        assert "web1" not in update.result.placement.assignments

    def test_update_result_committed(self, small_dc):
        ostro, topo = deploy_three_tier(small_dc)
        grown = topo.copy()
        grown.add_vm("extra", 2, 2)
        grown.connect("extra", "db0", 50)
        ostro.update(grown, algorithm="eg")
        deployed = ostro.deployed(topo.name)
        assert "extra" in deployed.placement.assignments

    def test_unknown_app_raises(self, small_dc):
        ostro = Ostro(small_dc)
        with pytest.raises(PlacementError):
            ostro.update(make_three_tier(), algorithm="eg")

    def test_infeasible_update_restores_original(self, small_dc):
        ostro, topo = deploy_three_tier(small_dc)
        snapshot = ostro.state.snapshot()
        impossible = topo.copy()
        impossible.add_vm("monster", 1000, 1000)
        with pytest.raises(PlacementError):
            ostro.update(impossible, algorithm="eg")
        assert ostro.state.snapshot() == snapshot
        assert set(ostro.deployed(topo.name).placement.assignments) == set(
            topo.nodes
        )

    def test_unpinning_when_pins_block(self, small_dc):
        """Force repositioning: the added VM needs more bandwidth to its
        pinned neighbor than the neighbor's host NIC has left, so the
        neighbor must move (unpin) for the update to go through."""
        ostro = Ostro(small_dc)
        topo = ApplicationTopology("pair")
        topo.add_vm("a", 8, 8)
        topo.add_vm("b", 1, 1)
        ostro.place(topo, algorithm="eg")
        placement = ostro.deployed("pair").placement
        host_a = placement.host_of("a")
        spare = next(
            h for h in range(small_dc.num_hosts)
            if not ostro.state.host_is_active(h)
        )
        # exhaust a's host: no CPU for a newcomer, NIC below the new demand
        ostro.state.place_vm(host_a, ostro.state.free_cpu[host_a], 0.5)
        nic_a = small_dc.hosts[host_a].link_index
        ostro.state.reserve_path((nic_a,), ostro.state.free_bw[nic_a] - 1000)
        # fill every host except a's, b's, and one spare
        keep_free = {host_a, placement.host_of("b"), spare}
        for h in range(small_dc.num_hosts):
            if h not in keep_free:
                ostro.state.place_vm(
                    h, ostro.state.free_cpu[h], ostro.state.free_mem[h]
                )
        grown = topo.copy()
        grown.add_vm("c", 8, 8)
        grown.connect("c", "a", 6000)  # exceeds a's remaining NIC headroom
        update = ostro.update(grown, algorithm="eg")
        assert "c" in update.result.placement.assignments
        assert update.unpin_rounds >= 1
        assert "a" in update.moved
        # a and c ended up co-located (the only way to carry 6 Gbps)
        assert update.result.placement.host_of(
            "a"
        ) == update.result.placement.host_of("c")


class TestAddVmsToTier:
    def test_grows_by_fraction(self):
        topo = make_three_tier(web=10)
        grown = add_vms_to_tier(topo, "web", 0.1)
        new = [n for n in grown.nodes if n.startswith("web-extra")]
        assert len(new) == 1

    def test_new_vms_mirror_template_links(self):
        topo = make_three_tier()
        grown = add_vms_to_tier(topo, "web", 0.5)
        template_neighbors = {n for n, _ in topo.neighbors("web0")}
        extra_neighbors = {n for n, _ in grown.neighbors("web-extra1")}
        assert extra_neighbors == template_neighbors

    def test_unknown_prefix_raises(self):
        with pytest.raises(PlacementError):
            add_vms_to_tier(make_three_tier(), "nope", 0.1)
