"""Tests for the search hot-path performance layer.

Covers the regression fixes and invariants the performance work relies on:

* the NIC-tracking estimator limits its bandwidth sum to the ``max_nodes``
  head (the docstring's promise; previously it summed every located node);
* ``SearchStats.eg_bound_runs`` counts greedy runs actually executed (a
  stuck first order triggers a bandwidth-ordered retry, which is a second
  run);
* ``candidate_targets(limit=..., dedup=True)`` honors the limit while
  still folding multiplicities over the full host scan;
* assign/unassign on a :class:`PartialPlacement` is a bit-exact no-op in
  LIFO order (the clone-free scoring invariant);
* scratch (clone-free) candidate scoring in BA* produces byte-identical
  placements to the legacy clone-per-candidate path;
* the admissible estimator never exceeds the bandwidth of any feasible
  completion on exhaustively enumerable topologies (hypothesis).
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import astar as astar_module
from repro.core.astar import BAStar, node_equivalence_classes
from repro.core.base import SearchStats
from repro.core.candidates import candidate_targets
from repro.core.greedy import GreedyConfig
from repro.core.heuristic import EstimatorConfig, LowerBoundEstimator
from repro.core.objective import Objective
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_datacenter
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError


def make_partial(topo, cloud, state=None):
    return PartialPlacement(
        topo,
        state if state is not None else DataCenterState(cloud),
        PathResolver.for_cloud(cloud),
    )


def star_topology(spokes, hub_bw=100, vcpus=1):
    """A hub VM linked to ``spokes`` VMs with decreasing bandwidth.

    With ``vcpus=8`` on the 16-core test hosts, only one spoke fits next
    to the hub, so the estimator must spread the rest over (host-
    separated) imaginary hosts and their flows reserve real bandwidth.
    """
    topo = ApplicationTopology("star")
    topo.add_vm("hub", vcpus=vcpus, mem_gb=1)
    for i in range(spokes):
        topo.add_vm(f"s{i}", vcpus=vcpus, mem_gb=1)
        topo.connect("hub", f"s{i}", bw_mbps=hub_bw - i)
    return topo


class TestMaxNodesHeadLimit:
    """The informative estimator's bandwidth sum stops at the head."""

    def test_beyond_head_links_contribute_zero(self, small_dc):
        topo = star_topology(6, vcpus=8)
        partial = make_partial(topo, small_dc)
        partial.assign("hub", 0)
        remaining = [f"s{i}" for i in range(6)]

        unlimited = LowerBoundEstimator(
            small_dc, EstimatorConfig(max_nodes=None)
        )
        limited = LowerBoundEstimator(
            small_dc, EstimatorConfig(max_nodes=3)
        )
        full_bw, _ = unlimited.estimate(partial, remaining)
        head_bw, _ = limited.estimate(partial, remaining)
        # All six spokes link to the placed hub, so the unlimited sum is
        # strictly positive; truncating to the 3 highest-bandwidth spokes
        # must drop the other three flows from the sum.
        assert full_bw > 0.0
        assert head_bw < full_bw

    def test_head_limit_only_loosens_the_bound(self, small_dc):
        topo = star_topology(5, vcpus=8)
        partial = make_partial(topo, small_dc)
        partial.assign("hub", 0)
        remaining = [f"s{i}" for i in range(5)]
        estimates = []
        for cap in (1, 2, 3, None):
            estimator = LowerBoundEstimator(
                small_dc, EstimatorConfig(max_nodes=cap)
            )
            estimates.append(estimator.estimate(partial, remaining)[0])
        # larger heads see more flows: the bound tightens monotonically
        assert estimates == sorted(estimates)


class TestEgBoundRunCounting:
    def test_retry_counts_as_second_run(self, small_dc, three_tier, monkeypatch):
        calls = []

        def fake_run_greedy_from(partial, order, *args, **kwargs):
            calls.append(list(order))
            if len(calls) == 1:
                raise PlacementError("stuck on the weight order")
            for name in order:
                partial.assign(name, 0)

        monkeypatch.setattr(
            astar_module, "run_greedy_from", fake_run_greedy_from
        )
        algo = BAStar(GreedyConfig())
        partial = make_partial(three_tier, small_dc)
        stats = SearchStats()
        estimator = LowerBoundEstimator(small_dc)
        recorder = obs.TelemetryRecorder(record_span_events=False)
        with obs.use(recorder):
            algo._eg_continue(
                partial,
                ["web0", "web1", "app0"],
                Objective.for_topology(three_tier, small_dc),
                estimator,
                stats,
            )
        assert len(calls) == 2  # weight order failed, bandwidth order ran
        assert stats.eg_bound_runs == 2
        metric = recorder.registry.get("ostro_eg_bound_runs_total")
        assert metric is not None and metric.value() == 2.0

    def test_single_run_counts_once(self, small_dc, three_tier):
        algo = BAStar(GreedyConfig())
        partial = make_partial(three_tier, small_dc)
        stats = SearchStats()
        estimator = LowerBoundEstimator(small_dc)
        outcome = algo._eg_continue(
            partial,
            ["web0"],
            Objective.for_topology(three_tier, small_dc),
            estimator,
            stats,
        )
        assert outcome is not None
        assert stats.eg_bound_runs == 1


class TestCandidateLimitWithDedup:
    def test_limit_truncates_classes_keeping_multiplicities(self, small_dc):
        topo = ApplicationTopology("pair")
        topo.add_vm("a", vcpus=1, mem_gb=1)
        topo.add_vm("b", vcpus=1, mem_gb=1)
        topo.connect("a", "b", bw_mbps=100)
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)  # break host symmetry by distance to host 0

        unlimited = candidate_targets(partial, "b", dedup=True)
        assert len(unlimited) > 2  # the scenario actually has >2 classes
        for limit in (1, 2, len(unlimited), len(unlimited) + 5):
            limited = candidate_targets(partial, "b", dedup=True, limit=limit)
            assert limited == unlimited[:limit]

    def test_limit_without_dedup_still_early_exits(self, small_dc):
        topo = ApplicationTopology("solo")
        topo.add_vm("a", vcpus=1, mem_gb=1)
        partial = make_partial(topo, small_dc)
        limited = candidate_targets(partial, "a", dedup=False, limit=3)
        assert [t.host for t in limited] == [0, 1, 2]
        assert all(t.multiplicity == 1 for t in limited)


class TestExactUndo:
    """assign/unassign must be a bit-exact no-op in LIFO order."""

    def test_lifo_roundtrip_is_bit_exact(self, small_dc):
        topo = ApplicationTopology("chain")
        # awkward float requirements maximize the chance that naive
        # arithmetic reversal (a - v + v) would leave round-off residue
        for i in range(4):
            topo.add_vm(f"n{i}", vcpus=0.1 + 0.1 * i, mem_gb=0.3)
        for i in range(3):
            topo.connect(f"n{i}", f"n{i + 1}", bw_mbps=33.3)
        partial = make_partial(topo, small_dc)
        before = partial.state.snapshot()
        hosts = [0, 0, 1, 5]
        for i, host in enumerate(hosts):
            partial.assign(f"n{i}", host)
        for i in reversed(range(4)):
            partial.unassign(f"n{i}")
        assert partial.state.snapshot() == before  # exact, not approximate
        assert partial.ubw == 0.0

    def test_out_of_order_undo_stays_consistent(self, small_dc):
        topo = ApplicationTopology("tri")
        for i in range(3):
            topo.add_vm(f"n{i}", vcpus=0.1, mem_gb=0.1)
        topo.connect("n0", "n1", bw_mbps=10)
        topo.connect("n1", "n2", bw_mbps=10)
        partial = make_partial(topo, small_dc)
        for i in range(3):
            partial.assign(f"n{i}", 0)
        # remove the middle node first: later records must not be exact-
        # restored from saved values that still embed n1's reservation
        partial.unassign("n1")
        partial.unassign("n2")
        partial.unassign("n0")
        snap = partial.state.snapshot()
        fresh = DataCenterState(small_dc).snapshot()
        for got_row, want_row in zip(snap, fresh):
            for got, want in zip(got_row, want_row):
                assert got == pytest.approx(want)


class TestScratchScoringEquivalence:
    @pytest.mark.parametrize("symmetry", [True, False])
    def test_ba_star_placements_identical(self, small_dc, three_tier, symmetry):
        state = DataCenterState(small_dc)
        objective = Objective.for_topology(three_tier, small_dc)
        results = {}
        for scratch in (True, False):
            algo = BAStar(
                GreedyConfig(),
                symmetry_reduction=symmetry,
                max_expansions=40,
                scratch_scoring=scratch,
            )
            results[scratch] = algo.place(
                three_tier, small_dc, state.clone(), objective
            )
        fast, slow = results[True], results[False]
        assert fast.placement.assignments == slow.placement.assignments
        assert fast.objective_value == slow.objective_value
        assert fast.stats.candidates_scored == slow.stats.candidates_scored
        assert fast.stats.paths_expanded == slow.stats.paths_expanded
        assert fast.stats.paths_pruned == slow.stats.paths_pruned


class TestSignatureEquivalenceClasses:
    def test_matches_naive_pairwise_construction(self):
        # the naive reference implementation the optimization replaced
        def naive(topology):
            names = list(topology.nodes)
            reqs = {n: topology.requirement_vector(n) for n in names}
            zones = {
                n: frozenset(z.name for z in topology.zones_of(n))
                for n in names
            }
            nbrs = {n: frozenset(topology.neighbors(n)) for n in names}

            def interchangeable(a, b):
                if reqs[a] != reqs[b] or zones[a] != zones[b]:
                    return False
                bw_ab = {bw for other, bw in nbrs[a] if other == b}
                bw_ba = {bw for other, bw in nbrs[b] if other == a}
                if bw_ab != bw_ba:
                    return False
                rest_a = {(o, bw) for o, bw in nbrs[a] if o != b}
                rest_b = {(o, bw) for o, bw in nbrs[b] if o != a}
                return rest_a == rest_b

            class_of, next_class = {}, 0
            for name in names:
                for other, cid in class_of.items():
                    if interchangeable(name, other):
                        class_of[name] = cid
                        break
                else:
                    class_of[name] = next_class
                    next_class += 1
            return class_of

        from repro.datacenter.model import Level
        from tests.conftest import make_three_tier

        topologies = [
            make_three_tier(),
            make_three_tier(web=4, app=1, db=3, with_zones=False),
            star_topology(5),
            star_topology(4, hub_bw=50),
        ]
        # symmetric pair: two interchangeable *adjacent* nodes
        sym = ApplicationTopology("sym-pair")
        sym.add_vm("x", 1, 1)
        sym.add_vm("y", 1, 1)
        sym.add_vm("z", 2, 2)
        sym.connect("x", "y", 100)
        sym.connect("x", "z", 50)
        sym.connect("y", "z", 50)
        sym.add_zone("xy", Level.HOST, ["x", "y"])
        topologies.append(sym)
        for topo in topologies:
            assert node_equivalence_classes(topo) == naive(topo)


def _enumerate_min_completion_bw(partial, remaining, hosts):
    """Brute-force the cheapest feasible completion's added bandwidth."""
    base = partial.ubw
    best = None
    for combo in itertools.product(hosts, repeat=len(remaining)):
        applied = []
        try:
            for name, host in zip(remaining, combo):
                partial.assign(name, host)
                applied.append(name)
            added = partial.ubw - base
            if best is None or added < best:
                best = added
        except PlacementError:
            pass
        finally:
            for name in reversed(applied):
                partial.unassign(name)
    return best


@st.composite
def tiny_topologies(draw):
    n = draw(st.integers(min_value=3, max_value=5))
    topo = ApplicationTopology("tiny")
    for i in range(n):
        topo.add_vm(
            f"v{i}",
            vcpus=draw(st.sampled_from([1, 2])),
            mem_gb=draw(st.sampled_from([1, 2])),
        )
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for i, j in draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=6)
    ):
        topo.connect(f"v{i}", f"v{j}", bw_mbps=draw(st.sampled_from([50, 100, 200])))
    return topo


class TestAdmissibleEstimatorProperty:
    @settings(max_examples=30, deadline=None)
    @given(topo=tiny_topologies(), first_host=st.integers(0, 3))
    def test_never_exceeds_any_feasible_completion(self, topo, first_host):
        cloud = build_datacenter(num_racks=2, hosts_per_rack=2)
        partial = make_partial(topo, cloud)
        estimator = LowerBoundEstimator(
            cloud, EstimatorConfig(optimistic_colocation=True)
        )
        names = list(topo.nodes)
        hosts = range(cloud.num_hosts)

        # at the root: the estimate bounds every complete placement
        est_bw, est_c = estimator.estimate(partial, names)
        assert est_c == 0  # imaginary hosts are never charged to u_c
        optimal = _enumerate_min_completion_bw(partial, names, hosts)
        if optimal is not None:
            assert est_bw <= optimal + 1e-6

        # and after committing the first node to a concrete host
        partial.assign(names[0], first_host)
        est_bw, _ = estimator.estimate(partial, names[1:])
        optimal = _enumerate_min_completion_bw(partial, names[1:], hosts)
        if optimal is not None:
            assert est_bw <= optimal + 1e-6
