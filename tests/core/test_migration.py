"""Tests for the migration planner."""

from __future__ import annotations

import pytest

from repro.core.migration import MigrationStep, apply_plan, plan_migration
from repro.core.placement import Assignment, Placement
from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.errors import PlacementError


def placement_for(topology, mapping, cloud):
    """Build a Placement from {node: (host, disk)} (unchecked; tests only)."""
    return Placement(
        app_name=topology.name,
        assignments={
            name: Assignment(name, host, disk)
            for name, (host, disk) in mapping.items()
        },
        reserved_bw_mbps=0,
        new_active_hosts=0,
        hosts_used=len({h for h, _ in mapping.values()}),
    )


def committed(topology, mapping, cloud):
    """A live state with `mapping` committed."""
    ostro = Ostro(cloud)
    placement = placement_for(topology, mapping, cloud)
    ostro.commit(topology, placement)
    return ostro.state, placement


class TestDirectMoves:
    def test_noop_when_placements_equal(self, small_dc):
        t = ApplicationTopology("m")
        t.add_vm("a", 2, 2)
        state, old = committed(t, {"a": (0, None)}, small_dc)
        plan = plan_migration(t, state, old, old)
        assert len(plan) == 0

    def test_single_move(self, small_dc):
        t = ApplicationTopology("m")
        t.add_vm("a", 2, 2)
        state, old = committed(t, {"a": (0, None)}, small_dc)
        new = placement_for(t, {"a": (5, None)}, small_dc)
        plan = plan_migration(t, state, old, new)
        assert plan.steps == [MigrationStep("a", 5)]

    def test_volume_move(self, small_dc):
        t = ApplicationTopology("m")
        t.add_vm("a", 2, 2)
        t.add_volume("v", 100)
        t.connect("a", "v", 50)
        state, old = committed(t, {"a": (0, None), "v": (0, 0)}, small_dc)
        new = placement_for(t, {"a": (0, None), "v": (3, 3)}, small_dc)
        plan = plan_migration(t, state, old, new)
        (step,) = plan.steps
        assert step.to_disk == 3

    def test_dependency_ordering(self, small_dc):
        """b must vacate host 1 before a can move in (capacity 16)."""
        t = ApplicationTopology("m")
        t.add_vm("a", 10, 4)
        t.add_vm("b", 10, 4)
        state, old = committed(
            t, {"a": (0, None), "b": (1, None)}, small_dc
        )
        new = placement_for(t, {"a": (1, None), "b": (2, None)}, small_dc)
        plan = plan_migration(t, state, old, new)
        order = [s.node for s in plan.steps]
        assert order == ["b", "a"]
        assert plan.bounces == []


class TestCycles:
    def test_swap_needs_a_bounce(self, small_dc):
        """a and b swap hosts; both hosts are too full to hold two VMs."""
        t = ApplicationTopology("m")
        t.add_vm("a", 10, 4)
        t.add_vm("b", 10, 4)
        state, old = committed(
            t, {"a": (0, None), "b": (1, None)}, small_dc
        )
        new = placement_for(t, {"a": (1, None), "b": (0, None)}, small_dc)
        plan = plan_migration(t, state, old, new)
        assert len(plan.bounces) == 1
        assert len(plan.moves) == 2
        # bounce first, then the two final moves
        assert plan.steps[0].bounce

    def test_blocked_cycle_without_room_raises(self, small_dc):
        t = ApplicationTopology("m")
        t.add_vm("a", 10, 4)
        t.add_vm("b", 10, 4)
        state, old = committed(
            t, {"a": (0, None), "b": (1, None)}, small_dc
        )
        # fill every other host so no bounce target exists
        for h in range(2, small_dc.num_hosts):
            state.place_vm(h, state.free_cpu[h], 0.1)
        new = placement_for(t, {"a": (1, None), "b": (0, None)}, small_dc)
        with pytest.raises(PlacementError, match="bounce|blocked"):
            plan_migration(t, state, old, new)

    def test_bounce_budget_respected(self, small_dc):
        t = ApplicationTopology("m")
        t.add_vm("a", 10, 4)
        t.add_vm("b", 10, 4)
        state, old = committed(
            t, {"a": (0, None), "b": (1, None)}, small_dc
        )
        new = placement_for(t, {"a": (1, None), "b": (0, None)}, small_dc)
        with pytest.raises(PlacementError):
            plan_migration(t, state, old, new, max_bounces=0)


class TestBandwidthDuringMigration:
    def test_transit_bandwidth_gates_the_plan(self, small_dc):
        """The intermediate configuration must carry the pair's flow: with
        enough NIC headroom the move sequence works; with too little, no
        one-at-a-time sequence exists (the flow would have to transit the
        drained NIC while the pair is split) and the planner says so."""

        def scenario(free_mbps):
            t = ApplicationTopology("m")
            t.add_vm("a", 2, 2)
            t.add_vm("b", 2, 2)
            t.connect("a", "b", 800)
            state, old = committed(
                t, {"a": (0, None), "b": (0, None)}, small_dc
            )
            nic4 = small_dc.hosts[4].link_index
            state.reserve_path(
                (nic4,), small_dc.link_capacity_mbps[nic4] - free_mbps
            )
            new = placement_for(
                t, {"a": (4, None), "b": (4, None)}, small_dc
            )
            return t, state, old, new

        # 900 Mbps free: the 800 Mbps flow fits during the split phase
        t, state, old, new = scenario(900)
        plan = plan_migration(t, state, old, new)
        apply_plan(t, state.clone(), old, plan)
        # 500 Mbps free: provably stuck -- whoever moves first needs 800
        # through the drained NIC while the partner is elsewhere
        t, state, old, new = scenario(500)
        with pytest.raises(PlacementError, match="blocked"):
            plan_migration(t, state, old, new)

    def test_infeasible_target_rejected(self, small_dc):
        t = ApplicationTopology("m")
        t.add_vm("a", 2, 2)
        state, old = committed(t, {"a": (0, None)}, small_dc)
        state.place_vm(5, 15, 30)  # host 5 nearly full
        new = placement_for(t, {"a": (5, None)}, small_dc)
        with pytest.raises(PlacementError):
            plan_migration(t, state, old, new)


class TestApplyPlan:
    def test_apply_moves_live_state(self, small_dc):
        t = ApplicationTopology("m")
        t.add_vm("a", 4, 4)
        state, old = committed(t, {"a": (0, None)}, small_dc)
        new = placement_for(t, {"a": (7, None)}, small_dc)
        plan = plan_migration(t, state, old, new)
        apply_plan(t, state, old, plan)
        assert state.free_cpu[0] == 16
        assert state.free_cpu[7] == 12

    def test_stale_plan_detected(self, small_dc):
        t = ApplicationTopology("m")
        t.add_vm("a", 4, 4)
        state, old = committed(t, {"a": (0, None)}, small_dc)
        new = placement_for(t, {"a": (7, None)}, small_dc)
        plan = plan_migration(t, state, old, new)
        state.place_vm(7, 14, 1)  # someone took the target meanwhile
        with pytest.raises(PlacementError, match="no longer fits"):
            apply_plan(t, state, old, plan)

    def test_incomplete_new_placement_rejected(self, small_dc):
        t = ApplicationTopology("m")
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        state, old = committed(
            t, {"a": (0, None), "b": (1, None)}, small_dc
        )
        partial_new = placement_for(t, {"a": (2, None)}, small_dc)
        with pytest.raises(PlacementError, match="does not cover"):
            plan_migration(t, state, old, partial_new)
