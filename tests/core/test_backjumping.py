"""Tests for greedy dead-end recovery (backjumping + NIC-aware estimate).

Regression tests for the failure mode found while reproducing the Fig. 7
sweeps: pure greedy drains a host's NIC that a later, low-bandwidth node
needs, leaving that node with no feasible host anywhere.
"""

from __future__ import annotations

import pytest

from repro.core.base import SearchStats
from repro.core.candidates import candidate_targets
from repro.core.greedy import EG, GreedyConfig, backtracking_place
from repro.core.heuristic import EstimatorConfig
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_datacenter
from repro.datacenter.loadgen import apply_table_iv_load
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from tests.core.test_greedy import verify_placement_feasible


class TestBacktrackingPlace:
    def _setup(self, small_dc):
        """A trap that needs backjumping: host 0's NIC is drained to 50
        Mbps, and 'c' must be host-separated from its 100 Mbps neighbor
        'a'. If 'a' lands on host 0 (first-fit order), 'c' has no feasible
        host anywhere -- only revisiting 'a''s decision helps."""
        from repro.datacenter.model import Level

        topo = ApplicationTopology("bj")
        topo.add_vm("a", 1, 1)
        topo.add_vm("b", 1, 1)
        topo.add_vm("c", 1, 1)
        topo.connect("a", "c", 100)
        topo.add_zone("z", Level.HOST, ["a", "c"])
        state = DataCenterState(small_dc)
        nic0 = small_dc.hosts[0].link_index
        state.reserve_path((nic0,), small_dc.link_capacity_mbps[nic0] - 50)
        partial = PartialPlacement(topo, state, PathResolver(small_dc))
        return topo, partial

    def _first_fit_rank(self, partial):
        def rank(node_name):
            return candidate_targets(partial, node_name, dedup=False)

        return rank

    def test_jump_unwinds_conflicting_neighbor(self, small_dc):
        topo, partial = self._setup(small_dc)
        stats = SearchStats()
        backtracking_place(
            partial, ["a", "b", "c"], self._first_fit_rank(partial), 10, stats
        )
        assert len(partial.assignments) == 3
        assert stats.backtracks >= 1
        # 'a' was moved off the drained host
        assert partial.host_of("a") != 0
        assert partial.host_of("a") != partial.host_of("c")

    def test_budget_zero_fails_fast(self, small_dc):
        topo, partial = self._setup(small_dc)
        stats = SearchStats()
        with pytest.raises(PlacementError):
            backtracking_place(
                partial, ["a", "b", "c"], self._first_fit_rank(partial), 0, stats
            )

    def test_unwinds_restore_state(self, small_dc):
        topo, partial = self._setup(small_dc)
        stats = SearchStats()
        snapshot = partial.state.snapshot()

        def rank_nothing(node_name):
            return []

        with pytest.raises(PlacementError):
            backtracking_place(partial, ["a"], rank_nothing, 5, stats)
        assert partial.state.snapshot() == snapshot


class TestNicAwareDeadEndAvoidance:
    """The Table-IV scenario that used to strand tier-1 nodes."""

    @pytest.fixture(scope="class")
    def loaded_dc(self):
        cloud = build_datacenter(num_racks=8)
        state = DataCenterState(cloud)
        apply_table_iv_load(state, seed=0)
        return cloud, state

    def test_multitier_places_without_exhausting_backjumps(self, loaded_dc):
        from repro.workloads.multitier import build_multitier

        cloud, state = loaded_dc
        topo = build_multitier(total_vms=50, heterogeneous=True)
        config = GreedyConfig(
            max_full_candidates=8, estimator=EstimatorConfig(max_nodes=24)
        )
        result = EG(config).place(topo, cloud, state)
        verify_placement_feasible(topo, cloud, state, result.placement)
        # the NIC-aware estimate avoids the trap proactively
        assert result.stats.backtracks <= 20

    def test_estimator_flags_stranded_future(self, loaded_dc):
        """Directly: a partial placement whose NICs cannot carry a future
        node's links estimates to infinity."""
        from repro.core.heuristic import LowerBoundEstimator

        cloud, _ = loaded_dc
        state = DataCenterState(cloud)
        topo = ApplicationTopology("strand")
        topo.add_vm("u", 1, 1)
        topo.add_vm("v", 1, 1)
        topo.connect("u", "v", 500)
        # u sits on a host whose NIC is nearly dead and whose CPU is full
        host = 0
        state.consume_background(
            host,
            vcpus=state.free_cpu[host] - 1,
            mem_gb=1,
            nic_mbps=cloud.hosts[host].nic_bw_mbps - 100,
        )
        partial = PartialPlacement(topo, state, PathResolver(cloud))
        partial.assign("u", host)  # consumes the last CPU
        estimator = LowerBoundEstimator(cloud)  # informative: tracks NICs
        est_bw, _ = estimator.estimate(partial, ["v"])
        assert est_bw == float("inf")
