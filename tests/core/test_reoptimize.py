"""Tests for Ostro.reoptimize: fresh placement + live migration."""

from __future__ import annotations

import pytest

from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.errors import PlacementError
from tests.conftest import make_three_tier


def chatty_pair():
    t = ApplicationTopology("pair")
    t.add_vm("a", 2, 2)
    t.add_vm("b", 2, 2)
    t.connect("a", "b", 500)
    return t


class TestReoptimize:
    def test_improves_a_deliberately_bad_placement(self, small_dc):
        """Commit a placement that splits a chatty pair across racks, then
        let reoptimize co-locate them and migrate."""
        from repro.core.placement import Assignment, Placement

        ostro = Ostro(small_dc)
        topo = chatty_pair()
        bad = Placement(
            app_name="pair",
            assignments={
                "a": Assignment("a", 0),
                "b": Assignment("b", 12),  # different rack: 4-hop flow
            },
            reserved_bw_mbps=500 * 4,
            new_active_hosts=2,
            hosts_used=2,
        )
        ostro.commit(topo, bad)
        result, plan = ostro.reoptimize("pair", algorithm="eg")
        assert result.reserved_bw_mbps == 0.0  # co-located now
        assert len(plan.moves) >= 1
        deployed = ostro.deployed("pair").placement
        assert deployed.host_of("a") == deployed.host_of("b")

    def test_migrated_state_is_consistent(self, small_dc):
        from repro.core.placement import Assignment, Placement

        ostro = Ostro(small_dc)
        topo = chatty_pair()
        bad = Placement(
            app_name="pair",
            assignments={
                "a": Assignment("a", 0),
                "b": Assignment("b", 12),
            },
            reserved_bw_mbps=2000,
            new_active_hosts=2,
            hosts_used=2,
        )
        pristine = ostro.state.snapshot()
        ostro.commit(topo, bad)
        ostro.reoptimize("pair", algorithm="eg")
        # removing the app after migration restores the pristine state
        ostro.remove("pair")
        assert ostro.state.snapshot() == pristine

    def test_already_optimal_placement_stays_put(self, small_dc):
        ostro = Ostro(small_dc)
        topo = chatty_pair()
        ostro.place(topo, algorithm="eg")
        before = ostro.deployed("pair").placement
        result, plan = ostro.reoptimize("pair", algorithm="eg")
        assert len(plan) == 0
        after = ostro.deployed("pair").placement
        assert after.assignments == before.assignments

    def test_unknown_application(self, small_dc):
        with pytest.raises(PlacementError):
            Ostro(small_dc).reoptimize("ghost")

    def test_three_tier_roundtrip(self, small_dc):
        ostro = Ostro(small_dc)
        topo = make_three_tier()
        ostro.place(topo, algorithm="egc")  # link-blind initial placement
        before = ostro.deployed("three-tier").placement
        result, plan = ostro.reoptimize("three-tier", algorithm="eg")
        deployed = ostro.deployed("three-tier").placement
        if plan.steps:
            assert deployed.assignments == result.placement.assignments
        else:
            assert deployed.assignments == before.assignments
        # every diversity zone still holds after migration
        for zone in topo.zones:
            members = sorted(zone.members)
            for i, m1 in enumerate(members):
                for m2 in members[i + 1 :]:
                    assert small_dc.separated_at(
                        deployed.host_of(m1), deployed.host_of(m2), zone.level
                    )
