"""Tests for the BA*/DBA* search-mode contracts."""

from __future__ import annotations

import pytest

from repro.core.astar import BAStar
from repro.core.deadline import DBAStar
from repro.core.greedy import GreedyConfig
from repro.core.heuristic import EstimatorConfig
from repro.errors import PlacementError
from tests.conftest import make_three_tier


class TestModeAttributes:
    def test_bastar_is_sound_mode(self):
        ba = BAStar()
        assert ba.ordering == "admissible"
        assert ba.terminate_on_bound is True
        assert ba.eg_rerun_policy == "per-depth"

    def test_dbastar_is_anytime_mode(self):
        dba = DBAStar(deadline_s=1.0)
        assert dba.ordering == "informative"
        assert dba.terminate_on_bound is False
        assert dba.eg_rerun_policy == "on-advance"
        assert dba.eg_rerun_every_pops == 25


class TestEstimatorConfigPlumbing:
    def test_admissible_variant(self):
        config = EstimatorConfig(max_nodes=7, optimistic_colocation=False)
        relaxed = config.admissible()
        assert relaxed.optimistic_colocation is True
        assert relaxed.max_nodes == 7

    def test_greedy_config_defaults_are_paper_faithful(self):
        config = GreedyConfig()
        assert config.dedup is True
        assert config.max_full_candidates is None  # exhaustive, as in paper
        assert config.estimator.optimistic_colocation is False  # literal


class TestPinnedValidation:
    def test_infeasible_pin_raises(self, small_dc):
        topo = make_three_tier()
        # pin two host-diverse db replicas onto the same host
        with pytest.raises(PlacementError):
            BAStar().place(
                topo,
                small_dc,
                pinned={"db0": (0, None), "db1": (0, None)},
            )

    def test_pin_on_full_host_raises(self, small_dc):
        from repro.datacenter.state import DataCenterState

        topo = make_three_tier()
        state = DataCenterState(small_dc)
        state.place_vm(3, 16, 31)
        with pytest.raises(PlacementError):
            BAStar().place(topo, small_dc, state, pinned={"db0": (3, None)})


class TestDeterminism:
    def test_bastar_deterministic(self, small_dc):
        topo = make_three_tier()
        a = BAStar().place(topo, small_dc)
        b = BAStar().place(topo, small_dc)
        assert a.placement.assignments == b.placement.assignments

    def test_eg_deterministic(self, small_dc):
        from repro.core.greedy import EG

        topo = make_three_tier()
        a = EG().place(topo, small_dc)
        b = EG().place(topo, small_dc)
        assert a.placement.assignments == b.placement.assignments
