"""Tests for the Ostro facade."""

from __future__ import annotations

import pytest

from repro.core.greedy import EG
from repro.core.scheduler import Ostro, make_algorithm
from repro.core.topology import ApplicationTopology
from repro.errors import PlacementError, ReproError
from tests.conftest import make_three_tier


class TestAlgorithmRegistry:
    @pytest.mark.parametrize(
        "name,cls_name",
        [
            ("eg", "EG"),
            ("EGC", "EGC"),
            ("egbw", "EGBW"),
            ("ba*", "BAStar"),
            ("ba", "BAStar"),
            ("astar", "BAStar"),
            ("dba*", "DBAStar"),
            ("dba", "DBAStar"),
        ],
    )
    def test_names_and_aliases(self, name, cls_name):
        assert type(make_algorithm(name)).__name__ == cls_name

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown placement algorithm"):
            make_algorithm("simulated-annealing")

    def test_options_forwarded(self):
        dba = make_algorithm("dba*", deadline_s=2.5, seed=7)
        assert dba.deadline_s == 2.5
        assert dba.seed == 7


class TestPlaceAndCommit:
    def test_commit_consumes_live_state(self, small_dc, three_tier):
        ostro = Ostro(small_dc)
        before_cpu = sum(ostro.state.free_cpu)
        result = ostro.place(three_tier, algorithm="eg")
        total_vcpus = sum(vm.vcpus for vm in three_tier.vms())
        assert sum(ostro.state.free_cpu) == before_cpu - total_vcpus
        assert three_tier.name in ostro.applications

    def test_commit_false_leaves_state(self, small_dc, three_tier):
        ostro = Ostro(small_dc)
        snapshot = ostro.state.snapshot()
        ostro.place(three_tier, algorithm="eg", commit=False)
        assert ostro.state.snapshot() == snapshot
        assert three_tier.name not in ostro.applications

    def test_duplicate_app_name_rejected(self, small_dc, three_tier):
        ostro = Ostro(small_dc)
        ostro.place(three_tier, algorithm="eg")
        with pytest.raises(PlacementError, match="already deployed"):
            ostro.place(three_tier, algorithm="eg")

    def test_algorithm_instance_accepted(self, small_dc, three_tier):
        ostro = Ostro(small_dc)
        result = ostro.place(three_tier, algorithm=EG(), commit=False)
        assert set(result.placement.assignments) == set(three_tier.nodes)

    def test_sequential_apps_see_consumed_capacity(self, small_dc):
        ostro = Ostro(small_dc)
        first = make_three_tier()
        first_result = ostro.place(first, algorithm="eg")
        second = make_three_tier().copy("second")
        second_result = ostro.place(second, algorithm="eg")
        # second app was placed against reduced capacity: both committed
        assert len(ostro.applications) == 2

    def test_remove_restores_state(self, small_dc, three_tier):
        ostro = Ostro(small_dc)
        snapshot = ostro.state.snapshot()
        ostro.place(three_tier, algorithm="eg")
        ostro.remove(three_tier.name)
        assert ostro.state.snapshot() == snapshot
        assert three_tier.name not in ostro.applications

    def test_remove_unknown_raises(self, small_dc):
        with pytest.raises(PlacementError, match="unknown application"):
            Ostro(small_dc).remove("ghost")

    def test_commit_requires_full_coverage(self, small_dc, three_tier):
        ostro = Ostro(small_dc)
        result = ostro.place(three_tier, algorithm="eg", commit=False)
        partial_placement = result.placement
        incomplete = type(partial_placement)(
            app_name=partial_placement.app_name,
            assignments={
                k: v
                for k, v in partial_placement.assignments.items()
                if k != "web0"
            },
            reserved_bw_mbps=0,
            new_active_hosts=0,
            hosts_used=0,
        )
        with pytest.raises(PlacementError, match="does not cover"):
            ostro.commit(three_tier, incomplete)

    def test_deployed_lookup(self, small_dc, three_tier):
        ostro = Ostro(small_dc)
        ostro.place(three_tier, algorithm="eg")
        deployed = ostro.deployed(three_tier.name)
        assert set(deployed.placement.assignments) == set(three_tier.nodes)
        with pytest.raises(PlacementError):
            ostro.deployed("ghost")


class TestCapacityExhaustion:
    def test_placement_error_when_cloud_full(self, small_dc):
        ostro = Ostro(small_dc)
        # fill the cloud with large apps until one fails
        placed = 0
        with pytest.raises(PlacementError):
            for i in range(100):
                app = ApplicationTopology(f"filler{i}")
                for j in range(4):
                    app.add_vm(f"vm{j}", 8, 16)
                ostro.place(app, algorithm="egc")
                placed += 1
        # the failed placement must not have leaked reservations
        assert len(ostro.applications) == placed

    def test_failed_commit_rolls_back(self, small_dc, three_tier):
        ostro = Ostro(small_dc)
        result = ostro.place(three_tier, algorithm="eg", commit=False)
        # sabotage: fill the chosen host so commit fails mid-way
        host = result.placement.host_of("db0")
        ostro.state.place_vm(host, ostro.state.free_cpu[host], 0.0)
        snapshot = ostro.state.snapshot()
        with pytest.raises(ReproError):
            ostro.commit(three_tier, result.placement)
        assert ostro.state.snapshot() == snapshot
        assert three_tier.name not in ostro.applications
