"""Tests for placement and inventory persistence."""

from __future__ import annotations

import json

import pytest

from repro.core.persistence import (
    inventory_to_dict,
    load_inventory,
    placement_from_dict,
    placement_to_dict,
    restore_inventory,
    save_inventory,
)
from repro.core.scheduler import Ostro
from repro.errors import DataCenterError, ReproError
from tests.conftest import make_three_tier


@pytest.fixture
def deployed(small_dc):
    ostro = Ostro(small_dc)
    topo = make_three_tier()
    result = ostro.place(topo, algorithm="eg")
    return ostro, topo, result


class TestPlacementRoundTrip:
    def test_roundtrip_preserves_assignments(self, deployed, small_dc):
        _, _, result = deployed
        data = placement_to_dict(result.placement, small_dc)
        restored = placement_from_dict(data, small_dc)
        assert restored.assignments == result.placement.assignments
        assert restored.reserved_bw_mbps == result.placement.reserved_bw_mbps

    def test_uses_names_not_indices(self, deployed, small_dc):
        _, _, result = deployed
        data = placement_to_dict(result.placement, small_dc)
        hosts = {entry["host"] for entry in data["assignments"].values()}
        assert hosts <= {h.name for h in small_dc.hosts}

    def test_volume_disks_preserved(self, deployed, small_dc):
        _, _, result = deployed
        data = placement_to_dict(result.placement, small_dc)
        assert "disk" in data["assignments"]["vol0"]
        restored = placement_from_dict(data, small_dc)
        assert restored.disk_of("vol0") == result.placement.disk_of("vol0")

    def test_json_serializable(self, deployed, small_dc):
        _, _, result = deployed
        json.dumps(placement_to_dict(result.placement, small_dc))

    def test_unknown_host_rejected(self, deployed, small_dc):
        _, _, result = deployed
        data = placement_to_dict(result.placement, small_dc)
        first = next(iter(data["assignments"].values()))
        first["host"] = "ghost-host"
        with pytest.raises(DataCenterError):
            placement_from_dict(data, small_dc)

    def test_missing_field_rejected(self, small_dc):
        with pytest.raises(ReproError, match="missing field"):
            placement_from_dict({"assignments": {}}, small_dc)


class TestInventory:
    def test_restore_reproduces_state(self, deployed, small_dc):
        ostro, _, _ = deployed
        data = inventory_to_dict(ostro)
        fresh = Ostro(small_dc)
        restore_inventory(fresh, data)
        assert fresh.state.snapshot() == ostro.state.snapshot()
        assert set(fresh.applications) == set(ostro.applications)

    def test_restored_apps_are_removable(self, deployed, small_dc):
        ostro, topo, _ = deployed
        fresh = Ostro(small_dc)
        pristine = fresh.state.snapshot()
        restore_inventory(fresh, inventory_to_dict(ostro))
        fresh.remove(topo.name)
        assert fresh.state.snapshot() == pristine

    def test_file_roundtrip(self, deployed, small_dc, tmp_path):
        ostro, _, _ = deployed
        path = str(tmp_path / "inventory.json")
        save_inventory(ostro, path)
        fresh = Ostro(small_dc)
        load_inventory(fresh, path)
        assert fresh.state.snapshot() == ostro.state.snapshot()

    def test_multiple_applications(self, small_dc):
        ostro = Ostro(small_dc)
        for i in range(2):
            ostro.place(make_three_tier().copy(f"app{i}"), algorithm="eg")
        fresh = Ostro(small_dc)
        restore_inventory(fresh, inventory_to_dict(ostro))
        assert set(fresh.applications) == {"app0", "app1"}
        assert fresh.state.snapshot() == ostro.state.snapshot()
