"""Tests for the lower-bound estimator."""

from __future__ import annotations

import pytest

from repro.core.heuristic import EstimatorConfig, LowerBoundEstimator
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState


def make_partial(topo, cloud):
    return PartialPlacement(topo, DataCenterState(cloud), PathResolver(cloud))


@pytest.fixture
def chain_topo():
    t = ApplicationTopology()
    t.add_vm("a", 2, 2)
    t.add_vm("b", 2, 2)
    t.add_vm("c", 2, 2)
    t.connect("a", "b", 100)
    t.connect("b", "c", 50)
    return t


class TestBasics:
    def test_empty_remaining_is_zero(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        assert estimator.estimate(partial, []) == (0.0, 0)

    def test_colocatable_chain_estimates_zero(self, chain_topo, small_dc):
        # Everything fits on one (imaginary) host: optimistic bound is 0.
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        ubw, uc = estimator.estimate(partial, ["a", "b", "c"])
        assert ubw == 0.0
        assert uc == 0

    def test_estimate_never_negative(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        partial.assign("a", 0)
        ubw, _ = estimator.estimate(partial, ["b", "c"])
        assert ubw >= 0.0


class TestDiversityForcesSpread:
    def test_host_zone_forces_min_hops(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 100)
        t.add_zone("z", Level.HOST, ["a", "b"])
        partial = make_partial(t, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        ubw, _ = estimator.estimate(partial, ["a", "b"])
        # must be at least different hosts: 2 hops minimum
        assert ubw == 100 * 2

    def test_rack_zone_forces_more_hops(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 100)
        t.add_zone("z", Level.RACK, ["a", "b"])
        partial = make_partial(t, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        ubw, _ = estimator.estimate(partial, ["a", "b"])
        # pod-less DC: rack separation costs 4 hops
        assert ubw == 100 * 4


class TestCapacityForcesSpread:
    def test_oversubscription_creates_imaginary_hosts(self, small_dc):
        t = ApplicationTopology()
        # each host has 16 cores; three 8-core VMs cannot co-locate
        for name in ("a", "b", "c"):
            t.add_vm(name, 8, 8)
        t.connect("a", "b", 100)
        t.connect("b", "c", 100)
        partial = make_partial(t, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        ubw, uc = estimator.estimate(partial, ["a", "b", "c"])
        assert ubw >= 100 * 2  # at least one link crosses hosts
        assert uc == 0  # imaginary hosts never count


class TestAgainstPlaced:
    def test_links_to_placed_nodes_counted(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        partial.assign("a", 0)
        # 'b' still fits next to 'a' (real host 0 is a target), so the
        # optimistic estimate may co-locate the rest: bound is 0.
        ubw, _ = estimator.estimate(partial, ["b", "c"])
        assert ubw == 0.0

    def test_full_host_pushes_neighbors_away(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        partial.assign("a", 0)
        partial.state.place_vm(0, 14, 29)  # host 0 now full
        ubw, _ = estimator.estimate(partial, ["b", "c"])
        # b cannot join a, so the a<->b link costs at least 2 hops
        assert ubw >= 100 * 2

    def test_placed_pair_links_not_double_counted(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        partial.assign("a", 0)
        partial.assign("b", 4)  # the a<->b link is already in partial.ubw
        ubw, _ = estimator.estimate(partial, ["c"])
        # only the b<->c link remains to estimate, optimally co-located
        assert ubw == 0.0


class TestTruncation:
    def test_truncation_only_loosens(self, small_dc):
        t = ApplicationTopology()
        for i in range(8):
            t.add_vm(f"v{i}", 8, 8)
        for i in range(7):
            t.connect(f"v{i}", f"v{i + 1}", 100)
        partial = make_partial(t, small_dc)
        full = LowerBoundEstimator(small_dc)
        truncated = LowerBoundEstimator(small_dc, EstimatorConfig(max_nodes=2))
        remaining = [f"v{i}" for i in range(8)]
        full_bw, _ = full.estimate(partial, remaining)
        trunc_bw, _ = truncated.estimate(partial, remaining)
        assert trunc_bw <= full_bw


class TestPerDiskLedger:
    """Regression: the real-host ledger must track disks individually.

    The old ledger collapsed a host's disks into one max-free scalar, so
    two volumes that each fit on *different* disks of the same host were
    wrongly declared infeasible there and pushed onto imaginary hosts.
    """

    def _two_disk_cloud(self):
        from repro.datacenter.model import (
            Cloud,
            DataCenter,
            Disk,
            Host,
            Rack,
        )

        hosts = [
            Host(
                name=f"h{i}",
                cpu_cores=16,
                mem_gb=32,
                disks=[
                    Disk(name=f"h{i}-d0", capacity_gb=50),
                    Disk(name=f"h{i}-d1", capacity_gb=50),
                ],
            )
            for i in range(4)
        ]
        rack = Rack(name="r0", hosts=hosts)
        return Cloud([DataCenter(name="dc", racks=[rack])])

    def test_two_volumes_fit_on_two_disks_of_one_host(self):
        cloud = self._two_disk_cloud()
        t = ApplicationTopology()
        t.add_vm("vm", 2, 2)
        t.add_volume("va", size_gb=40)
        t.add_volume("vb", size_gb=40)
        t.connect("vm", "va", 100)
        t.connect("vm", "vb", 100)
        partial = make_partial(t, cloud)
        partial.assign("vm", 0)
        estimator = LowerBoundEstimator(cloud)
        ubw, _ = estimator.estimate(partial, ["va", "vb"])
        # 40 + 40 exceeds either single 50 GB disk, but each volume fits
        # on its own disk: both co-locate with the VM, zero extra hops.
        assert ubw == 0.0

    def test_single_disk_sequence_still_bounded(self):
        cloud = self._two_disk_cloud()
        t = ApplicationTopology()
        t.add_vm("vm", 2, 2)
        t.add_volume("va", size_gb=45)
        t.add_volume("vb", size_gb=45)
        t.add_volume("vc", size_gb=45)
        t.connect("vm", "va", 100)
        t.connect("vm", "vb", 100)
        t.connect("vm", "vc", 100)
        partial = make_partial(t, cloud)
        partial.assign("vm", 0)
        estimator = LowerBoundEstimator(cloud)
        ubw, _ = estimator.estimate(partial, ["va", "vb", "vc"])
        # Only two 45 GB volumes fit host 0 (one per disk); the third must
        # leave the host and its link costs at least one host separation.
        assert ubw == 100 * 2


class TestUnrealizableForcedDistance:
    """Regression: zone-forced separations the cloud cannot realize.

    A DATACENTER-level zone in a single-DC cloud is genuinely infeasible.
    The admissible estimator must signal that with ``inf`` rather than a
    finite pessimistic hop count (which under-reports an infeasible future
    and lets BA* keep such states comparable with feasible ones); the
    informative estimator keeps the finite value so EG ranking still works.
    """

    def _zone_forced_topo(self):
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 100)
        t.add_zone("z", Level.DATACENTER, ["a", "b"])
        return t

    def test_admissible_variant_returns_inf(self, small_dc):
        t = self._zone_forced_topo()
        partial = make_partial(t, small_dc)
        estimator = LowerBoundEstimator(
            small_dc, EstimatorConfig(optimistic_colocation=True)
        )
        ubw, _ = estimator.estimate(partial, ["a", "b"])
        assert ubw == float("inf")

    def test_informative_variant_stays_finite(self, small_dc):
        t = self._zone_forced_topo()
        partial = make_partial(t, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        ubw, _ = estimator.estimate(partial, ["a", "b"])
        assert ubw == 100 * 2 * 4  # pessimistic max-hop stand-in, finite
        assert ubw != float("inf")

    def test_realizable_distance_unchanged(self, podded_cloud):
        # Two DCs exist: the same zone is realizable and costs the real
        # minimum for distance 4 in both variants.
        t = self._zone_forced_topo()
        partial = make_partial(t, podded_cloud)
        expected = 100 * podded_cloud.min_hops_for_distance(4)
        for cfg in (
            EstimatorConfig(),
            EstimatorConfig(optimistic_colocation=True),
        ):
            estimator = LowerBoundEstimator(podded_cloud, cfg)
            ubw, _ = estimator.estimate(partial, ["a", "b"])
            assert ubw == expected


class TestAdmissibilityOnSmallInstances:
    """Estimator bound vs. true optimum found by brute force."""

    def _brute_force_best(self, topo, cloud, objective):
        from itertools import product

        from repro.core.placement import PartialPlacement as PP

        names = list(topo.nodes)
        best = float("inf")
        state = DataCenterState(cloud)
        resolver = PathResolver(cloud)
        for hosts in product(range(cloud.num_hosts), repeat=len(names)):
            partial = PP(topo, state, resolver)
            try:
                for name, host in zip(names, hosts):
                    node = topo.node(name)
                    disk = (
                        cloud.hosts[host].disks[0].index
                        if not node.is_vm
                        else None
                    )
                    partial.assign(name, host, disk)
            except Exception:
                continue
            best = min(best, objective.score(partial.ubw, partial.uc))
        return best

    def test_root_estimate_below_true_optimum(self):
        from repro.core.objective import Objective
        from repro.datacenter.builder import build_datacenter

        cloud = build_datacenter(num_racks=2, hosts_per_rack=2)
        t = ApplicationTopology()
        t.add_vm("a", 10, 10)
        t.add_vm("b", 10, 10)
        t.add_vm("c", 2, 2)
        t.connect("a", "b", 100)
        t.connect("b", "c", 40)
        t.add_zone("z", Level.HOST, ["a", "b"])
        objective = Objective.for_topology(t, cloud)
        partial = make_partial(t, cloud)
        estimator = LowerBoundEstimator(cloud)
        est_bw, est_c = estimator.estimate(partial, list(t.nodes))
        root_value = objective.score(est_bw, est_c)
        optimum = self._brute_force_best(t, cloud, objective)
        assert root_value <= optimum + 1e-9
