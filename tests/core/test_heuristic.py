"""Tests for the lower-bound estimator."""

from __future__ import annotations

import pytest

from repro.core.heuristic import EstimatorConfig, LowerBoundEstimator
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState


def make_partial(topo, cloud):
    return PartialPlacement(topo, DataCenterState(cloud), PathResolver(cloud))


@pytest.fixture
def chain_topo():
    t = ApplicationTopology()
    t.add_vm("a", 2, 2)
    t.add_vm("b", 2, 2)
    t.add_vm("c", 2, 2)
    t.connect("a", "b", 100)
    t.connect("b", "c", 50)
    return t


class TestBasics:
    def test_empty_remaining_is_zero(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        assert estimator.estimate(partial, []) == (0.0, 0)

    def test_colocatable_chain_estimates_zero(self, chain_topo, small_dc):
        # Everything fits on one (imaginary) host: optimistic bound is 0.
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        ubw, uc = estimator.estimate(partial, ["a", "b", "c"])
        assert ubw == 0.0
        assert uc == 0

    def test_estimate_never_negative(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        partial.assign("a", 0)
        ubw, _ = estimator.estimate(partial, ["b", "c"])
        assert ubw >= 0.0


class TestDiversityForcesSpread:
    def test_host_zone_forces_min_hops(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 100)
        t.add_zone("z", Level.HOST, ["a", "b"])
        partial = make_partial(t, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        ubw, _ = estimator.estimate(partial, ["a", "b"])
        # must be at least different hosts: 2 hops minimum
        assert ubw == 100 * 2

    def test_rack_zone_forces_more_hops(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 100)
        t.add_zone("z", Level.RACK, ["a", "b"])
        partial = make_partial(t, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        ubw, _ = estimator.estimate(partial, ["a", "b"])
        # pod-less DC: rack separation costs 4 hops
        assert ubw == 100 * 4


class TestCapacityForcesSpread:
    def test_oversubscription_creates_imaginary_hosts(self, small_dc):
        t = ApplicationTopology()
        # each host has 16 cores; three 8-core VMs cannot co-locate
        for name in ("a", "b", "c"):
            t.add_vm(name, 8, 8)
        t.connect("a", "b", 100)
        t.connect("b", "c", 100)
        partial = make_partial(t, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        ubw, uc = estimator.estimate(partial, ["a", "b", "c"])
        assert ubw >= 100 * 2  # at least one link crosses hosts
        assert uc == 0  # imaginary hosts never count


class TestAgainstPlaced:
    def test_links_to_placed_nodes_counted(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        partial.assign("a", 0)
        # 'b' still fits next to 'a' (real host 0 is a target), so the
        # optimistic estimate may co-locate the rest: bound is 0.
        ubw, _ = estimator.estimate(partial, ["b", "c"])
        assert ubw == 0.0

    def test_full_host_pushes_neighbors_away(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        partial.assign("a", 0)
        partial.state.place_vm(0, 14, 29)  # host 0 now full
        ubw, _ = estimator.estimate(partial, ["b", "c"])
        # b cannot join a, so the a<->b link costs at least 2 hops
        assert ubw >= 100 * 2

    def test_placed_pair_links_not_double_counted(self, chain_topo, small_dc):
        partial = make_partial(chain_topo, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        partial.assign("a", 0)
        partial.assign("b", 4)  # the a<->b link is already in partial.ubw
        ubw, _ = estimator.estimate(partial, ["c"])
        # only the b<->c link remains to estimate, optimally co-located
        assert ubw == 0.0


class TestTruncation:
    def test_truncation_only_loosens(self, small_dc):
        t = ApplicationTopology()
        for i in range(8):
            t.add_vm(f"v{i}", 8, 8)
        for i in range(7):
            t.connect(f"v{i}", f"v{i + 1}", 100)
        partial = make_partial(t, small_dc)
        full = LowerBoundEstimator(small_dc)
        truncated = LowerBoundEstimator(small_dc, EstimatorConfig(max_nodes=2))
        remaining = [f"v{i}" for i in range(8)]
        full_bw, _ = full.estimate(partial, remaining)
        trunc_bw, _ = truncated.estimate(partial, remaining)
        assert trunc_bw <= full_bw


class TestAdmissibilityOnSmallInstances:
    """Estimator bound vs. true optimum found by brute force."""

    def _brute_force_best(self, topo, cloud, objective):
        from itertools import product

        from repro.core.placement import PartialPlacement as PP

        names = list(topo.nodes)
        best = float("inf")
        state = DataCenterState(cloud)
        resolver = PathResolver(cloud)
        for hosts in product(range(cloud.num_hosts), repeat=len(names)):
            partial = PP(topo, state, resolver)
            try:
                for name, host in zip(names, hosts):
                    node = topo.node(name)
                    disk = (
                        cloud.hosts[host].disks[0].index
                        if not node.is_vm
                        else None
                    )
                    partial.assign(name, host, disk)
            except Exception:
                continue
            best = min(best, objective.score(partial.ubw, partial.uc))
        return best

    def test_root_estimate_below_true_optimum(self):
        from repro.core.objective import Objective
        from repro.datacenter.builder import build_datacenter

        cloud = build_datacenter(num_racks=2, hosts_per_rack=2)
        t = ApplicationTopology()
        t.add_vm("a", 10, 10)
        t.add_vm("b", 10, 10)
        t.add_vm("c", 2, 2)
        t.connect("a", "b", 100)
        t.connect("b", "c", 40)
        t.add_zone("z", Level.HOST, ["a", "b"])
        objective = Objective.for_topology(t, cloud)
        partial = make_partial(t, cloud)
        estimator = LowerBoundEstimator(cloud)
        est_bw, est_c = estimator.estimate(partial, list(t.nodes))
        root_value = objective.score(est_bw, est_c)
        optimum = self._brute_force_best(t, cloud, objective)
        assert root_value <= optimum + 1e-9
