"""Tests for the independent placement validator."""

from __future__ import annotations

import pytest

from repro.core.greedy import EG
from repro.core.placement import Assignment, Placement
from repro.core.topology import ApplicationTopology
from repro.core.validate import (
    PlacementViolation,
    placement_violations,
    validate_placement,
)
from repro.datacenter.model import Level
from repro.datacenter.state import DataCenterState
from tests.conftest import make_three_tier


def place(mapping, name="app"):
    return Placement(
        app_name=name,
        assignments={
            n: Assignment(n, host, disk) for n, (host, disk) in mapping.items()
        },
        reserved_bw_mbps=0,
        new_active_hosts=0,
        hosts_used=0,
    )


@pytest.fixture
def topo():
    t = ApplicationTopology("v")
    t.add_vm("a", 4, 8)
    t.add_vm("b", 4, 8)
    t.add_volume("vol", 100)
    t.connect("a", "b", 500, max_hops=4)
    t.connect("a", "vol", 200)
    t.add_zone("z", Level.HOST, ["a", "b"])
    return t


class TestValid:
    def test_algorithm_output_passes(self, small_dc):
        topo = make_three_tier()
        state = DataCenterState(small_dc)
        result = EG().place(topo, small_dc, state)
        validate_placement(topo, small_dc, state, result.placement)

    def test_hand_built_valid_placement(self, topo, small_dc):
        state = DataCenterState(small_dc)
        good = place({"a": (0, None), "b": (1, None), "vol": (0, 0)})
        assert placement_violations(topo, small_dc, state, good) == []


class TestViolations:
    def test_missing_node(self, topo, small_dc):
        state = DataCenterState(small_dc)
        bad = place({"a": (0, None)})
        (violation,) = placement_violations(topo, small_dc, state, bad)
        assert "not placed" in violation

    def test_capacity_violation(self, topo, small_dc):
        state = DataCenterState(small_dc)
        state.place_vm(0, 14, 30)
        bad = place({"a": (0, None), "b": (1, None), "vol": (1, 1)})
        violations = placement_violations(topo, small_dc, state, bad)
        assert any("capacity" in v for v in violations)

    def test_diversity_violation(self, topo, small_dc):
        state = DataCenterState(small_dc)
        bad = place({"a": (0, None), "b": (0, None), "vol": (0, 0)})
        violations = placement_violations(topo, small_dc, state, bad)
        assert any("diversity" in v for v in violations)

    def test_bandwidth_violation(self, topo, small_dc):
        state = DataCenterState(small_dc)
        nic = small_dc.hosts[0].link_index
        state.reserve_path((nic,), small_dc.link_capacity_mbps[nic] - 100)
        bad = place({"a": (0, None), "b": (4, None), "vol": (4, 4)})
        violations = placement_violations(topo, small_dc, state, bad)
        assert any("bandwidth" in v for v in violations)

    def test_latency_violation(self, small_dc):
        t = ApplicationTopology("lat")
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        t.connect("a", "b", 10, max_hops=2)
        state = DataCenterState(small_dc)
        bad = place({"a": (0, None), "b": (8, None)})  # cross-rack: 4 hops
        violations = placement_violations(t, small_dc, state, bad)
        assert any("latency" in v for v in violations)

    def test_disk_host_mismatch(self, topo, small_dc):
        state = DataCenterState(small_dc)
        bad = place({"a": (0, None), "b": (1, None), "vol": (0, 5)})
        violations = placement_violations(topo, small_dc, state, bad)
        assert any("is not on" in v for v in violations)

    def test_volume_without_disk(self, topo, small_dc):
        state = DataCenterState(small_dc)
        bad = place({"a": (0, None), "b": (1, None), "vol": (0, None)})
        violations = placement_violations(topo, small_dc, state, bad)
        assert any("has no disk" in v for v in violations)

    def test_raise_form_collects_everything(self, topo, small_dc):
        state = DataCenterState(small_dc)
        bad = place({"a": (0, None), "b": (0, None), "vol": (0, None)})
        with pytest.raises(PlacementViolation) as excinfo:
            validate_placement(topo, small_dc, state, bad)
        assert len(excinfo.value.violations) >= 2
