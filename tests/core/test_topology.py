"""Tests for the application-topology model."""

from __future__ import annotations

import pytest

from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level
from repro.errors import TopologyError


@pytest.fixture
def topo():
    t = ApplicationTopology("t")
    t.add_vm("a", 2, 4)
    t.add_vm("b", 1, 1)
    t.add_volume("v", 100)
    t.connect("a", "b", 100)
    t.connect("a", "v", 200)
    return t


class TestConstruction:
    def test_nodes_and_kinds(self, topo):
        assert topo.node("a").is_vm
        assert not topo.node("v").is_vm
        assert len(topo.vms()) == 2
        assert len(topo.volumes()) == 1
        assert topo.size() == 3

    def test_duplicate_name_rejected(self, topo):
        with pytest.raises(TopologyError, match="duplicate"):
            topo.add_vm("a", 1, 1)
        with pytest.raises(TopologyError, match="duplicate"):
            topo.add_volume("b", 10)

    def test_empty_name_rejected(self):
        t = ApplicationTopology()
        with pytest.raises(TopologyError):
            t.add_vm("", 1, 1)

    def test_nonpositive_requirements_rejected(self):
        t = ApplicationTopology()
        with pytest.raises(TopologyError):
            t.add_vm("x", 0, 1)
        with pytest.raises(TopologyError):
            t.add_vm("x", 1, -1)
        with pytest.raises(TopologyError):
            t.add_volume("x", 0)

    def test_unknown_node_lookup(self, topo):
        with pytest.raises(TopologyError):
            topo.node("zzz")


class TestLinks:
    def test_adjacency_is_symmetric(self, topo):
        assert ("b", 100.0) in topo.neighbors("a")
        assert ("a", 100.0) in topo.neighbors("b")

    def test_self_link_rejected(self, topo):
        with pytest.raises(TopologyError, match="self-link"):
            topo.connect("a", "a", 10)

    def test_unknown_endpoint_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.connect("a", "zzz", 10)

    def test_volume_volume_link_rejected(self, topo):
        topo.add_volume("v2", 10)
        with pytest.raises(TopologyError, match="two volumes"):
            topo.connect("v", "v2", 10)

    def test_negative_bandwidth_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.connect("b", "v", -1)

    def test_bandwidth_of_node(self, topo):
        assert topo.bandwidth_of("a") == 300
        assert topo.bandwidth_of("b") == 100
        assert topo.bandwidth_of("v") == 200

    def test_total_link_bandwidth(self, topo):
        assert topo.total_link_bandwidth() == 300


class TestZones:
    def test_add_zone(self, topo):
        zone = topo.add_zone("z", Level.RACK, ["a", "b"])
        assert zone in topo.zones_of("a")
        assert zone in topo.zones_of("b")
        assert zone not in topo.zones_of("v")

    def test_zone_needs_two_members(self, topo):
        with pytest.raises(TopologyError, match="two members"):
            topo.add_zone("z", Level.HOST, ["a"])

    def test_zone_unknown_member_rejected(self, topo):
        with pytest.raises(TopologyError, match="unknown"):
            topo.add_zone("z", Level.HOST, ["a", "zzz"])

    def test_duplicate_zone_rejected(self, topo):
        topo.add_zone("z", Level.HOST, ["a", "b"])
        with pytest.raises(TopologyError, match="duplicate"):
            topo.add_zone("z", Level.HOST, ["a", "v"])

    def test_node_in_multiple_zones(self, topo):
        z1 = topo.add_zone("z1", Level.HOST, ["a", "b"])
        z2 = topo.add_zone("z2", Level.RACK, ["a", "v"])
        assert set(topo.zones_of("a")) == {z1, z2}


class TestRequirementVector:
    def test_vm_vector(self, topo):
        assert topo.requirement_vector("a") == (2, 4, 0.0, 300)

    def test_volume_vector(self, topo):
        assert topo.requirement_vector("v") == (0.0, 0.0, 100, 200)


class TestRemoveNode:
    def test_remove_drops_links(self, topo):
        topo.remove_node("a")
        assert "a" not in topo.nodes
        assert topo.neighbors("b") == []
        assert all("a" not in (l.a, l.b) for l in topo.links)

    def test_remove_shrinks_zones(self, topo):
        topo.add_zone("z", Level.HOST, ["a", "b", "v"])
        topo.remove_node("a")
        (zone,) = topo.zones
        assert zone.members == frozenset({"b", "v"})

    def test_remove_drops_tiny_zones(self, topo):
        topo.add_zone("z", Level.HOST, ["a", "b"])
        topo.remove_node("a")
        assert topo.zones == []

    def test_remove_unknown_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.remove_node("zzz")


class TestCopyAndValidate:
    def test_copy_is_independent(self, topo):
        dup = topo.copy("dup")
        dup.add_vm("c", 1, 1)
        assert "c" not in topo.nodes
        assert dup.name == "dup"

    def test_validate_empty_fails(self):
        with pytest.raises(TopologyError):
            ApplicationTopology("empty").validate()

    def test_validate_ok(self, topo):
        topo.validate()
