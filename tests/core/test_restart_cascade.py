"""Tests for the greedy restart cascade and its helpers."""

from __future__ import annotations

import pytest

from repro.core.base import SearchStats
from repro.core.greedy import (
    EG,
    GreedyConfig,
    greedy_with_restarts,
    most_free_nic_tie,
    sort_nodes_by_bandwidth,
)
from repro.core.heuristic import LowerBoundEstimator
from repro.core.objective import Objective
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError


class TestSortByBandwidth:
    def test_descending_with_name_ties(self):
        t = ApplicationTopology()
        t.add_vm("quiet", 1, 1)
        t.add_vm("b", 1, 1)
        t.add_vm("a", 1, 1)
        t.add_vm("chatty", 1, 1)
        t.connect("chatty", "quiet", 500)
        order = sort_nodes_by_bandwidth(t)
        assert order[0] == "chatty"
        assert order[1] == "quiet"
        assert order[2:] == ["a", "b"]


class TestMostFreeNicTie:
    def test_prefers_freest_nic(self, small_dc):
        from repro.core.candidates import CandidateTarget

        t = ApplicationTopology()
        t.add_vm("x", 1, 1)
        state = DataCenterState(small_dc)
        nic0 = small_dc.hosts[0].link_index
        state.reserve_path((nic0,), 5000)
        partial = PartialPlacement(t, state, PathResolver(small_dc))
        key = most_free_nic_tie(partial)
        drained = CandidateTarget(host=0)
        fresh = CandidateTarget(host=1)
        assert key(fresh) < key(drained)


class TestGreedyWithRestarts:
    def _context(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 100)
        state = DataCenterState(small_dc)
        resolver = PathResolver(small_dc)
        objective = Objective.for_topology(t, small_dc)
        estimator = LowerBoundEstimator(small_dc)
        return t, state, resolver, objective, estimator

    def test_first_strategy_wins_no_restarts(self, small_dc):
        t, state, resolver, objective, estimator = self._context(small_dc)
        stats = SearchStats()
        partial = greedy_with_restarts(
            t, state, resolver, objective, estimator,
            GreedyConfig(), stats, {},
            strategies=[(list(t.nodes), None), (list(t.nodes), None)],
        )
        assert stats.restarts == 0
        assert len(partial.assignments) == 2

    def test_falls_through_to_working_strategy(self, small_dc):
        t, state, resolver, objective, estimator = self._context(small_dc)
        stats = SearchStats()
        bogus_order = ["a"]  # incomplete order places only one node -- use
        # an impossible first strategy instead: an order with an unknown
        # node raises inside run_greedy_from via candidate generation.
        partial = greedy_with_restarts(
            t, state, resolver, objective, estimator,
            GreedyConfig(), stats, {},
            strategies=[
                (["a", "b"], _impossible_tie),
                (["a", "b"], None),
            ],
        )
        assert stats.restarts == 1
        assert len(partial.assignments) == 2

    def test_all_fail_reraises_first_error(self, small_dc):
        t, state, resolver, objective, estimator = self._context(small_dc)
        stats = SearchStats()
        with pytest.raises(PlacementError):
            greedy_with_restarts(
                t, state, resolver, objective, estimator,
                GreedyConfig(), stats, {},
                strategies=[(["a", "b"], _impossible_tie)],
            )

    def test_objective_override_strategy(self, small_dc):
        t, state, resolver, objective, estimator = self._context(small_dc)
        stats = SearchStats()
        bw_only = Objective(1.0, 0.0, objective.ubw_hat, objective.uc_hat)
        partial = greedy_with_restarts(
            t, state, resolver, objective, estimator,
            GreedyConfig(), stats, {},
            strategies=[(["a", "b"], None, bw_only)],
        )
        assert len(partial.assignments) == 2

    def test_failed_attempts_leave_no_residue(self, small_dc):
        t, state, resolver, objective, estimator = self._context(small_dc)
        stats = SearchStats()
        before = state.snapshot()
        partial = greedy_with_restarts(
            t, state, resolver, objective, estimator,
            GreedyConfig(), stats, {},
            strategies=[
                (["a", "b"], _impossible_tie),
                (["a", "b"], None),
            ],
        )
        # the input state is never mutated (each attempt works on a clone)
        assert state.snapshot() == before


def _impossible_tie(partial):
    """A tie factory whose strategy always fails: it raises on first use."""

    def key(target):
        raise PlacementError("sabotaged strategy")

    return key


class TestEGFallback:
    def test_eg_reports_restarts_in_stats(self, small_dc):
        """On easy inputs EG succeeds on the paper's strategy: restarts=0."""
        t = ApplicationTopology()
        t.add_vm("a", 2, 2)
        t.add_vm("b", 2, 2)
        t.connect("a", "b", 100)
        result = EG().place(t, small_dc)
        assert result.stats.restarts == 0
