"""Tests for PartialPlacement bookkeeping."""

from __future__ import annotations

import pytest

from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError


@pytest.fixture
def topo():
    t = ApplicationTopology("p")
    t.add_vm("a", 2, 2)
    t.add_vm("b", 4, 4)
    t.add_volume("v", 50)
    t.connect("a", "b", 100)
    t.connect("b", "v", 200)
    return t


@pytest.fixture
def partial(topo, small_dc):
    state = DataCenterState(small_dc)
    return PartialPlacement(topo, state, PathResolver(small_dc))


class TestAssign:
    def test_vm_assignment_reserves_resources(self, partial):
        partial.assign("a", 0)
        assert partial.state.free_cpu[0] == 14
        assert partial.is_placed("a")
        assert partial.host_of("a") == 0
        assert partial.uc == 1

    def test_bandwidth_reserved_to_placed_neighbors(self, partial, small_dc):
        partial.assign("a", 0)
        partial.assign("b", 4)  # different rack: 4-hop path
        assert partial.ubw == 100 * 4
        nic0 = small_dc.hosts[0].link_index
        assert partial.state.free_bw[nic0] == 10_000 - 100

    def test_same_host_no_bandwidth(self, partial):
        partial.assign("a", 0)
        partial.assign("b", 0)
        assert partial.ubw == 0.0
        assert partial.uc == 1

    def test_volume_assignment(self, partial, small_dc):
        disk = small_dc.hosts[2].disks[0].index
        partial.assign("v", 2, disk)
        assert partial.state.free_disk[disk] == 950
        assert partial.uc == 1

    def test_volume_without_disk_rejected(self, partial):
        with pytest.raises(PlacementError):
            partial.assign("v", 2)

    def test_volume_disk_host_mismatch_rejected(self, partial, small_dc):
        disk_on_host3 = small_dc.hosts[3].disks[0].index
        with pytest.raises(PlacementError, match="does not belong"):
            partial.assign("v", 2, disk_on_host3)

    def test_double_assign_rejected(self, partial):
        partial.assign("a", 0)
        with pytest.raises(PlacementError, match="already placed"):
            partial.assign("a", 1)

    def test_capacity_failure_is_atomic(self, partial):
        partial.assign("a", 0)
        partial.state.place_vm(0, 14, 0.5)  # leave no CPU for 'b'
        snapshot = partial.state.snapshot()
        with pytest.raises(PlacementError):
            partial.assign("b", 0)
        assert partial.state.snapshot() == snapshot
        assert partial.is_placed("a")
        assert not partial.is_placed("b")

    def test_bandwidth_failure_rolls_back_everything(self, topo, small_dc):
        state = DataCenterState(small_dc)
        # starve host 4's NIC so the a<->b flow cannot be reserved
        nic4 = small_dc.hosts[4].link_index
        state.reserve_path((nic4,), small_dc.link_capacity_mbps[nic4] - 50)
        partial = PartialPlacement(topo, state, PathResolver(small_dc))
        partial.assign("a", 0)
        before = partial.state.snapshot()
        with pytest.raises(PlacementError):
            partial.assign("b", 4)
        assert partial.state.snapshot() == before
        assert not partial.is_placed("b")


class TestUnassign:
    def test_roundtrip_restores_state(self, partial):
        before = partial.state.snapshot()
        partial.assign("a", 0)
        partial.assign("b", 4)
        partial.assign("v", 4, partial.state.cloud.hosts[4].disks[0].index)
        partial.unassign("v")
        partial.unassign("b")
        partial.unassign("a")
        assert partial.state.snapshot() == before
        assert partial.ubw == 0.0
        assert partial.uc == 0

    def test_unassign_unplaced_rejected(self, partial):
        with pytest.raises(PlacementError):
            partial.unassign("a")

    def test_activation_tracking_through_unassign(self, partial):
        partial.assign("a", 0)
        partial.assign("b", 0)
        partial.unassign("b")  # host 0 still active because of 'a'
        assert partial.uc == 1
        partial.unassign("a")
        assert partial.uc == 0


class TestAccounting:
    def test_preactive_host_not_counted(self, topo, small_dc):
        state = DataCenterState(small_dc)
        state.consume_background(0, vcpus=1, mem_gb=1)
        partial = PartialPlacement(topo, state, PathResolver(small_dc))
        partial.assign("a", 0)
        assert partial.uc == 0  # host 0 was already active

    def test_placed_hosts(self, partial):
        partial.assign("a", 0)
        partial.assign("b", 4)
        assert partial.placed_hosts() == {0, 4}

    def test_placement_key_changes_with_assignment(self, partial):
        empty = partial.placement_key()
        partial.assign("a", 0)
        assert partial.placement_key() != empty


class TestCloneAndFreeze:
    def test_clone_is_independent(self, partial):
        partial.assign("a", 0)
        clone = partial.clone()
        clone.assign("b", 1)
        assert not partial.is_placed("b")
        assert partial.state.free_cpu[1] == 16

    def test_freeze_summary(self, partial, small_dc):
        partial.assign("a", 0)
        partial.assign("b", 4)
        partial.assign("v", 4, small_dc.hosts[4].disks[0].index)
        placement = partial.freeze()
        assert placement.app_name == "p"
        assert placement.host_of("a") == 0
        assert placement.disk_of("v") == small_dc.hosts[4].disks[0].index
        assert placement.reserved_bw_mbps == 100 * 4  # b<->v co-located
        assert placement.new_active_hosts == 2
        assert placement.hosts_used == 2
