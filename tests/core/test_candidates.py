"""Tests for candidate generation and equivalence-class dedup."""

from __future__ import annotations

import pytest

from repro.core.candidates import candidate_targets
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState


def make_partial(topo, cloud, state=None):
    return PartialPlacement(
        topo, state or DataCenterState(cloud), PathResolver(cloud)
    )


@pytest.fixture
def topo():
    t = ApplicationTopology()
    t.add_vm("a", 2, 2)
    t.add_vm("b", 2, 2)
    t.add_volume("v", 50)
    t.connect("a", "b", 100)
    t.connect("b", "v", 50)
    t.add_zone("z", Level.HOST, ["a", "b"])
    return t


class TestFeasibleEnumeration:
    def test_all_hosts_feasible_without_dedup(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        targets = candidate_targets(partial, "a", dedup=False)
        assert len(targets) == small_dc.num_hosts
        assert all(t.disk is None and t.multiplicity == 1 for t in targets)

    def test_volume_targets_carry_disks(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        targets = candidate_targets(partial, "v", dedup=False)
        assert len(targets) == len(small_dc.disks)
        assert all(t.disk is not None for t in targets)

    def test_infeasible_hosts_excluded(self, topo, small_dc):
        state = DataCenterState(small_dc)
        state.place_vm(0, 15, 31)  # nearly full
        partial = make_partial(topo, small_dc, state)
        targets = candidate_targets(partial, "a", dedup=False)
        assert all(t.host != 0 for t in targets)

    def test_diversity_filters_candidates(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)
        targets = candidate_targets(partial, "b", dedup=False)
        assert all(t.host != 0 for t in targets)  # host-level zone

    def test_bandwidth_filters_candidates(self, topo, small_dc):
        state = DataCenterState(small_dc)
        # Starve host 1's NIC: 'b' can't reach 'a' from there.
        nic1 = small_dc.hosts[1].link_index
        state.reserve_path((nic1,), 10_000 - 50)
        partial = make_partial(topo, small_dc, state)
        partial.assign("a", 0)
        targets = candidate_targets(partial, "b", dedup=False)
        assert all(t.host != 1 for t in targets)

    def test_empty_when_nothing_fits(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("x", 16, 32)
        state = DataCenterState(small_dc)
        for h in range(small_dc.num_hosts):
            state.place_vm(h, 1, 1)
        partial = make_partial(t, small_dc, state)
        assert candidate_targets(partial, "x") == []


class TestDedup:
    def test_identical_hosts_collapse(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        targets = candidate_targets(partial, "a", dedup=True)
        # pristine pod-less DC: every host is interchangeable
        assert len(targets) == 1
        assert targets[0].multiplicity == small_dc.num_hosts
        assert targets[0].host == 0  # lowest-index representative

    def test_placed_rack_breaks_symmetry(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)
        targets = candidate_targets(partial, "b", dedup=True)
        # classes: same rack as 'a' (3 hosts left) vs other racks (12)
        assert len(targets) == 2
        sizes = sorted(t.multiplicity for t in targets)
        assert sizes == [3, 12]

    def test_resource_difference_breaks_symmetry(self, topo, small_dc):
        state = DataCenterState(small_dc)
        state.place_vm(5, 8, 8)
        partial = make_partial(topo, small_dc, state)
        targets = candidate_targets(partial, "a", dedup=True)
        hosts = {t.host for t in targets}
        assert 5 in hosts  # the loaded host forms its own class

    def test_multiplicities_cover_all_feasible(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)
        with_dedup = candidate_targets(partial, "b", dedup=True)
        without = candidate_targets(partial, "b", dedup=False)
        assert sum(t.multiplicity for t in with_dedup) == len(without)

    def test_limit_caps_results(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        targets = candidate_targets(partial, "a", dedup=False, limit=5)
        assert len(targets) == 5
