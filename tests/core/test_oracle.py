"""Optimality-gap oracle: the bound must never exceed a feasible score.

The oracle (:mod:`repro.core.oracle`) certifies a lower bound on the
optimal fresh-placement objective via a rack-granular MILP relaxation.
Its one load-bearing property is *validity*: the bound can be loose, but
it must never exceed the objective value of any feasible placement an
algorithm finds. These tests check validity on the reference scenarios
and on hypothesis-generated inputs, plus the closed-form pieces the
relaxation is assembled from -- including the regression where an
unrealizable separation distance (e.g. "different datacenters" in a
single-DC cloud) used to enter the cost minima as 0 and collapse the
whole bound to zero.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import oracle
from repro.core.greedy import EG
from repro.core.objective import Objective
from repro.datacenter.builder import build_cloud, build_datacenter
from repro.datacenter.loadgen import apply_random_load
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from tests.conftest import make_three_tier
from tests.test_properties import small_cloud, topologies

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMinHopsAtDistance:
    def test_unrealizable_distance_is_inf_not_zero(self):
        # single-DC, single-pod cloud: d=3 and d=4 cannot occur; a 0
        # would poison every min() chain below it
        cloud = build_datacenter(num_racks=4, hosts_per_rack=4)
        g = oracle._min_hops_at_distance(cloud)
        assert g[0] == 0.0
        assert g[1] > 0.0
        assert g[2] > 0.0
        assert math.isinf(g[3]) or g[3] > 0.0
        assert math.isinf(g[4])

    def test_every_level_realizable_in_full_hierarchy(self):
        cloud = build_cloud(
            num_datacenters=2, pods_per_dc=2, racks_per_pod=2,
            hosts_per_rack=2,
        )
        g = oracle._min_hops_at_distance(cloud)
        assert g[0] == 0.0
        assert all(0.0 < v < math.inf for v in g[1:])


class TestLinkLevelCosts:
    G = [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_monotone_outward(self):
        far, dc, pod, rack = oracle._link_level_costs(self.G, 0, 2, 4, 8)
        assert rack <= pod <= dc <= far
        assert rack == 2.0  # d=0 excluded: co-location is modeled apart

    def test_forced_distance_excludes_inner_levels(self):
        _, _, pod, rack = oracle._link_level_costs(self.G, 2, 2, 4, 8)
        assert rack == pod == 4.0  # same-rack impossible, inherits pod

    def test_single_dc_folds_far(self):
        far, dc, _, _ = oracle._link_level_costs(self.G, 0, 1, 4, 8)
        assert far == dc

    def test_single_rack_folds_everything(self):
        g = [0.0, 2.0, math.inf, math.inf, math.inf]
        far, dc, pod, rack = oracle._link_level_costs(g, 0, 1, 1, 1)
        assert far == dc == pod == rack == 2.0

    def test_inf_sentinel_never_wins_a_min(self):
        g = [0.0, 2.0, 4.0, 6.0, math.inf]
        far, *_ = oracle._link_level_costs(g, 0, 1, 4, 8)
        assert math.isfinite(far)


class TestCapacityPieces:
    def test_pair_can_colocate_respects_each_resource(self):
        host_max = (8.0, 16.0, 100.0)
        a = (4.0, 8.0, 0.0)
        assert oracle._pair_can_colocate(a, (4.0, 8.0, 0.0), host_max)
        assert not oracle._pair_can_colocate(a, (5.0, 1.0, 0.0), host_max)
        assert not oracle._pair_can_colocate(a, (1.0, 9.0, 0.0), host_max)

    def test_component_min_hosts_ceils_per_resource(self):
        demands = {"a": (6.0, 1.0, 0.0), "b": (6.0, 1.0, 0.0),
                   "c": (6.0, 1.0, 0.0)}
        # 18 cpu over 8-cpu hosts -> at least 3 hosts
        k = oracle._component_min_hosts(
            ["a", "b", "c"], demands, (8.0, 32.0, 100.0)
        )
        assert k == 3
        assert oracle._component_min_hosts(
            ["a"], demands, (8.0, 32.0, 100.0)
        ) == 1

    def test_component_min_hosts_infeasible_resource(self):
        demands = {"a": (1.0, 1.0, 50.0)}
        k = oracle._component_min_hosts(["a"], demands, (8.0, 32.0, 0.0))
        assert math.isinf(k)

    def test_link_components_partition_links(self):
        topo = make_three_tier()
        plinks = oracle._positive_links(topo)
        comps = oracle._link_components(topo)
        seen = sorted(li for comp in comps for li in comp)
        assert seen == list(range(len(plinks)))


class TestBoundValidity:
    def _check(self, topo, cloud, state):
        objective = Objective.for_topology(topo, cloud)
        try:
            result = EG().place(topo, cloud, state, objective)
        except PlacementError:
            return  # no feasible witness; any bound is vacuously valid
        bound = oracle.lower_bound(
            topo, cloud, state, objective, time_limit_s=10.0
        )
        achieved = objective.score(
            result.reserved_bw_mbps, result.new_active_hosts
        )
        assert bound.score <= achieved + 1e-9
        assert bound.bw_mbps <= result.reserved_bw_mbps + 1e-9
        assert bound.new_hosts <= result.new_active_hosts + 1e-9

    def test_three_tier_bound_valid_and_nonvacuous(self, small_dc):
        topo = make_three_tier(web=4, app=4, db=2)
        state = DataCenterState(small_dc)
        self._check(topo, small_dc, state)

    def test_bound_positive_when_demand_forces_spreading(self):
        # 6 VMs x 4 vcpus on 8-cpu hosts: >= 3 hosts, so a connected
        # topology must keep >= 2 links crossing hosts
        from repro.core.topology import ApplicationTopology

        cloud = build_datacenter(
            num_racks=2, hosts_per_rack=2, cpu_cores=8, mem_gb=16
        )
        topo = ApplicationTopology("chain")
        for i in range(6):
            topo.add_vm(f"vm{i}", vcpus=4, mem_gb=1)
        for i in range(5):
            topo.connect(f"vm{i}", f"vm{i + 1}", bw_mbps=100)
        state = DataCenterState(cloud)
        objective = Objective.for_topology(topo, cloud)
        bound = oracle.lower_bound(
            topo, cloud, state, objective, time_limit_s=10.0
        )
        assert bound.score > 0.0
        self._check(topo, cloud, state)

    @SETTINGS
    @given(topo=topologies(max_vms=5, max_volumes=2), seed=st.integers(0, 30))
    def test_bound_never_exceeds_eg(self, topo, seed):
        cloud = small_cloud()
        state = DataCenterState(cloud)
        apply_random_load(state, fraction_hosts=0.4, seed=seed)
        self._check(topo, cloud, state)


class TestGapPayload:
    def test_payload_shape(self, small_dc):
        topo = make_three_tier()
        state = DataCenterState(small_dc)
        objective = Objective.for_topology(topo, small_dc)
        bound = oracle.lower_bound(
            topo, small_dc, state, objective, time_limit_s=10.0
        )
        payload = oracle.gap_payload(bound)
        assert set(payload) == {
            "score_lower_bound",
            "reserved_bw_mbps_lower_bound",
            "new_active_hosts_lower_bound",
            "solver",
            "status",
        }
        assert payload["solver"] in ("milp", "milp-dual", "closed-form")


@pytest.mark.skipif(oracle.HAVE_SCIPY, reason="exercises the no-scipy path")
class TestClosedFormFallback:  # pragma: no cover - env dependent
    def test_closed_form_only(self, small_dc):
        topo = make_three_tier()
        state = DataCenterState(small_dc)
        objective = Objective.for_topology(topo, small_dc)
        bound = oracle.lower_bound(topo, small_dc, state, objective)
        assert bound.solver == "closed-form"
