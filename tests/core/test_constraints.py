"""Tests for the constraint checks."""

from __future__ import annotations

import pytest

from repro.core import constraints
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Level
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState


def make_partial(topo, cloud, state=None):
    return PartialPlacement(
        topo, state or DataCenterState(cloud), PathResolver(cloud)
    )


@pytest.fixture
def topo():
    t = ApplicationTopology()
    t.add_vm("a", 4, 8)
    t.add_vm("b", 4, 8)
    t.add_volume("v", 100)
    t.connect("a", "b", 1000)
    t.connect("a", "v", 500)
    t.add_zone("z", Level.RACK, ["a", "b"])
    return t


class TestCapacity:
    def test_vm_capacity(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        assert constraints.capacity_ok(partial, "a", 0)
        partial.state.place_vm(0, 13, 0.1)
        assert not constraints.capacity_ok(partial, "a", 0)

    def test_volume_capacity(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        assert constraints.capacity_ok(partial, "v", 0, disk=0)
        partial.state.place_volume(0, 950)
        assert not constraints.capacity_ok(partial, "v", 0, disk=0)

    def test_volume_without_disk_fails(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        assert not constraints.capacity_ok(partial, "v", 0, disk=None)


class TestDiversity:
    def test_rack_zone_blocks_same_rack(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)
        assert not constraints.diversity_ok(partial, "b", 0)  # same host
        assert not constraints.diversity_ok(partial, "b", 1)  # same rack
        assert constraints.diversity_ok(partial, "b", 4)  # other rack

    def test_unplaced_members_ignored(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        assert constraints.diversity_ok(partial, "b", 0)

    def test_multi_zone_all_must_hold(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_vm("b", 1, 1)
        t.add_vm("c", 1, 1)
        t.add_zone("z1", Level.HOST, ["a", "b"])
        t.add_zone("z2", Level.RACK, ["b", "c"])
        partial = make_partial(t, small_dc)
        partial.assign("a", 0)
        partial.assign("c", 1)
        # b must avoid host 0 (z1) and rack of host 1 (z2)
        assert not constraints.diversity_ok(partial, "b", 0)
        assert not constraints.diversity_ok(partial, "b", 1)
        assert not constraints.diversity_ok(partial, "b", 2)  # rack of c
        assert constraints.diversity_ok(partial, "b", 4)


class TestBandwidth:
    def test_demand_aggregates_shared_links(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        partial.assign("b", 4)
        partial.assign("v", 8, small_dc.hosts[8].disks[0].index)
        demand = constraints.bandwidth_demand(partial, "a", 0)
        nic0 = small_dc.hosts[0].link_index
        assert demand[nic0] == 1500  # both flows leave through a's NIC

    def test_bandwidth_ok_respects_free(self, topo, small_dc):
        state = DataCenterState(small_dc)
        nic0 = small_dc.hosts[0].link_index
        state.reserve_path((nic0,), 10_000 - 1000)  # only 1000 Mbps left
        partial = make_partial(topo, small_dc, state)
        partial.assign("b", 4)
        partial.assign("v", 8, small_dc.hosts[8].disks[0].index)
        assert not constraints.bandwidth_ok(partial, "a", 0)
        assert constraints.bandwidth_ok(partial, "a", 5)

    def test_no_placed_neighbors_is_free(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        assert constraints.bandwidth_ok(partial, "a", 0)


class TestFeasible:
    def test_combines_all_checks(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        partial.assign("a", 0)
        assert constraints.feasible(partial, "b", 4)
        assert not constraints.feasible(partial, "b", 1)  # diversity


class TestObviousInfeasibility:
    def test_oversized_vm(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("huge", 1000, 1)
        partial = make_partial(t, small_dc)
        reason = constraints.topology_obviously_infeasible(t, partial)
        assert reason and "huge" in reason

    def test_oversized_volume(self, small_dc):
        t = ApplicationTopology()
        t.add_vm("a", 1, 1)
        t.add_volume("big", 10_000)
        partial = make_partial(t, small_dc)
        reason = constraints.topology_obviously_infeasible(t, partial)
        assert reason and "big" in reason

    def test_unsatisfiable_zone(self, small_dc):
        t = ApplicationTopology()
        for i in range(5):
            t.add_vm(f"v{i}", 1, 1)
        t.add_zone("wide", Level.RACK, [f"v{i}" for i in range(5)])
        partial = make_partial(t, small_dc)  # only 4 racks
        reason = constraints.topology_obviously_infeasible(t, partial)
        assert reason and "wide" in reason

    def test_feasible_returns_none(self, topo, small_dc):
        partial = make_partial(topo, small_dc)
        assert constraints.topology_obviously_infeasible(topo, partial) is None
