#!/usr/bin/env python3
"""Telemetry: trace one DBA* placement and summarize the search effort.

Enables the ``repro.obs`` telemetry subsystem, runs a single
deadline-bounded A* placement on a 4-rack data center, then inspects the
three surfaces the recorder captured: the typed event stream, the metric
registry, and the nested trace tree (via the human-readable summary).

Run:  python examples/tracing.py
"""

from repro import ApplicationTopology, DiversityLevel, Ostro, obs
from repro.datacenter import build_datacenter


def build_app() -> ApplicationTopology:
    app = ApplicationTopology("traced")
    for i in range(3):
        app.add_vm(f"app{i}", vcpus=2, mem_gb=4)
        app.add_vm(f"db{i}", vcpus=4, mem_gb=8)
        app.add_volume(f"vol{i}", size_gb=100)
        app.connect(f"app{i}", f"db{i}", bw_mbps=200)
        app.connect(f"db{i}", f"vol{i}", bw_mbps=400)
    for i in range(3):
        app.connect(f"app{i}", f"app{(i + 1) % 3}", bw_mbps=100)
    app.add_zone("db-ha", DiversityLevel.RACK, ["db0", "db1", "db2"])
    return app


def main() -> None:
    cloud = build_datacenter(num_racks=4, hosts_per_rack=8)
    app = build_app()

    # Scoped enablement: everything inside the block records into this
    # recorder; the process-wide no-op recorder is restored afterwards.
    recorder = obs.TelemetryRecorder()
    with obs.use(recorder):
        result = Ostro(cloud).place(app, algorithm="dba*", deadline_s=1.0)

    print(f"placed {app.name!r}: {result.reserved_bw_mbps:.0f} Mbps "
          f"reserved, {result.new_active_hosts} new hosts, "
          f"{result.runtime_s * 1000:.1f} ms\n")

    # 1. The typed event stream -- every search decision, in order.
    events = recorder.events
    print(f"{events.count()} events recorded, by type:")
    for event_type in ("estimate_computed", "path_expanded", "path_pruned",
                       "bound_updated", "node_placed", "deadline_tick"):
        print(f"  {event_type:18} {events.count(event_type):4}")
    first_prune = next(iter(events.of_type("path_pruned")), None)
    if first_prune is not None:
        print(f"first prune: depth={first_prune.fields['depth']} "
              f"reason={first_prune.fields['reason']!r}")

    # 2. The metric registry -- Prometheus text exposition.
    prometheus = obs.render_prometheus(recorder.registry)
    print("\nselected metric samples:")
    for line in prometheus.splitlines():
        if line.startswith(("ostro_nodes_expanded_total",
                            "ostro_placements_total",
                            "ostro_estimate_seconds_count")):
            print(f"  {line}")

    # 3. The search-effort summary + trace tree.
    print()
    print(recorder.summary())


if __name__ == "__main__":
    main()
