#!/usr/bin/env python3
"""The paper's realistic experiment: QFS on the 16-host testbed.

Reproduces the Section IV-A setup -- the QFS application topology of
Fig. 5 placed onto a preloaded 16-host cluster -- comparing all five
algorithms (Table I), then replays the synthetic QFS benchmark over the
best placement to verify that traffic fits the reservations.

Run:  python examples/qfs_placement.py
"""

from repro import make_algorithm
from repro.apps.qfs_sim import QFSBenchmark
from repro.core.objective import Objective
from repro.datacenter import DataCenterState, build_testbed
from repro.datacenter.loadgen import apply_testbed_load
from repro.workloads.qfs import build_qfs


def main() -> None:
    cloud = build_testbed()
    state = DataCenterState(cloud)
    apply_testbed_load(state, seed=0)
    topology = build_qfs()
    objective = Objective.for_topology(
        topology, cloud, theta_bw=0.99, theta_c=0.01
    )

    print("QFS on the preloaded 16-host testbed (Table I configuration)\n")
    print(f"{'algorithm':>9}  {'bandwidth':>10}  {'new hosts':>9}  {'runtime':>8}")
    best = None
    for name, options in (
        ("egc", {}),
        ("egbw", {}),
        ("eg", {}),
        ("ba*", {"max_expansions": 2000}),
        ("dba*", {"deadline_s": 0.5}),
    ):
        algorithm = make_algorithm(name, **options)
        result = algorithm.place(topology, cloud, state, objective)
        print(
            f"{name:>9}  {result.reserved_bw_mbps:8.0f} Mb  "
            f"{result.new_active_hosts:9d}  {result.runtime_s:7.3f}s"
        )
        if best is None or result.objective_value < best.objective_value:
            best = result

    print("\nreplaying the QFS benchmark over the best placement:")
    benchmark = QFSBenchmark(topology, best.placement, cloud)
    report = benchmark.run(chunks=120)
    print(f"  flows:                  {report.flows}")
    print(f"  peak link utilization:  {report.max_link_utilization:.1%}")
    print(f"  reservation violations: {len(report.reservation_violations)}")
    print(
        "  aggregate throughput:   "
        f"{report.aggregate_throughput_mbps:.0f} Mbps"
    )


if __name__ == "__main__":
    main()
