#!/usr/bin/env python3
"""Section-VI extensions: latency-bounded pipes and CPU policies.

The paper's future-work section calls for (a) latency requirements on the
communication links between nodes and (b) guaranteed vs. best-effort CPU
reservations. Both are implemented; this example demonstrates them on a
latency-sensitive trading-style application:

* the gateway and the matching engine must be at most 2 network hops
  apart (same rack);
* the matching engine and its journal volume must be co-located
  (max_hops=0);
* analytics VMs are best-effort: they reserve only half their nominal
  vCPUs, so they pack densely onto leftover capacity.

Run:  python examples/latency_and_policies.py
"""

from repro import ApplicationTopology, Ostro
from repro.datacenter import DataCenterState, build_datacenter


def build_app() -> ApplicationTopology:
    app = ApplicationTopology("trading")
    app.add_vm("gateway", vcpus=4, mem_gb=8)
    app.add_vm("engine", vcpus=8, mem_gb=16)
    app.add_volume("journal", size_gb=200)
    # hot path: bounded hop counts stand in for latency bounds
    app.connect("gateway", "engine", bw_mbps=2000, max_hops=2)
    app.connect("engine", "journal", bw_mbps=3000, max_hops=0)
    # best-effort analytics fan-out
    for i in range(4):
        app.add_vm(f"analytics{i}", vcpus=8, mem_gb=4,
                   cpu_policy="best_effort")
        app.connect(f"analytics{i}", "engine", bw_mbps=50)
    return app


def main() -> None:
    cloud = build_datacenter(num_racks=4, hosts_per_rack=4)
    state = DataCenterState(cloud, best_effort_cpu_factor=0.5)
    ostro = Ostro(cloud, state)
    app = build_app()

    result = ostro.place(app, algorithm="dba*", deadline_s=1.0)
    placement = result.placement

    gateway = placement.host_of("gateway")
    engine = placement.host_of("engine")
    journal = placement.host_of("journal")
    print("latency-constrained placement:")
    print(f"  gateway  on {cloud.hosts[gateway].name}")
    print(f"  engine   on {cloud.hosts[engine].name} "
          f"({cloud.hop_count(gateway, engine)} hops from gateway, bound 2)")
    print(f"  journal  on {cloud.hosts[journal].name} "
          f"({cloud.hop_count(engine, journal)} hops from engine, bound 0)")

    print("\nbest-effort analytics packing (8 nominal vCPUs each, "
          "4 reserved):")
    for i in range(4):
        host = placement.host_of(f"analytics{i}")
        print(f"  analytics{i} on {cloud.hosts[host].name} "
              f"(host now has {state.free_cpu[host]:.0f} free cores)")

    reserved = sum(
        16 - state.free_cpu[h] for h in range(cloud.num_hosts)
    )
    nominal = 4 + 8 + 4 * 8
    print(f"\nvCPUs reserved across the cloud: {reserved:.0f} "
          f"(nominal demand {nominal}; best-effort discount saved "
          f"{nominal - reserved:.0f})")
    print(f"reserved bandwidth: {result.reserved_bw_mbps:.0f} Mbps")


if __name__ == "__main__":
    main()
