#!/usr/bin/env python3
"""The full Fig. 1 pipeline: Heat template -> Ostro -> Nova/Cinder.

Writes a QoS-enhanced Heat template for a small VNF chain (firewall ->
router -> CDN cache, the kind of topology the paper's introduction
motivates), runs it through the Ostro Heat wrapper, and deploys the
annotated template with the Nova/Cinder surrogates, verifying that the
deployed stack matches Ostro's decision.

Run:  python examples/heat_pipeline.py
"""

import json

from repro.core.scheduler import Ostro
from repro.datacenter import DataCenterState, build_datacenter
from repro.heat.engine import HeatEngine
from repro.heat.wrapper import OstroHeatWrapper

VNF_CHAIN_TEMPLATE = {
    "heat_template_version": "2013-05-23",
    "description": "virtual network function chain with QoS pipes",
    "resources": {
        # two redundant firewalls, rack-separated for reliability
        "fw1": {"type": "OS::Nova::Server",
                "properties": {"flavor": "m1.medium"}},
        "fw2": {"type": "OS::Nova::Server",
                "properties": {"flavor": "m1.medium"}},
        "router": {"type": "OS::Nova::Server",
                   "properties": {"vcpus": 4, "ram_gb": 8}},
        "cache": {"type": "OS::Nova::Server",
                  "properties": {"flavor": "m1.large"}},
        "cache-store": {"type": "OS::Cinder::Volume",
                        "properties": {"size": 500}},
        "fw1-router": {"type": "ATT::QoS::Pipe",
                       "properties": {"ends": ["fw1", "router"],
                                      "bandwidth_mbps": 800}},
        "fw2-router": {"type": "ATT::QoS::Pipe",
                       "properties": {"ends": ["fw2", "router"],
                                      "bandwidth_mbps": 800}},
        "router-cache": {"type": "ATT::QoS::Pipe",
                         "properties": {"ends": ["router", "cache"],
                                        "bandwidth_mbps": 1200}},
        "cache-io": {"type": "ATT::QoS::Pipe",
                     "properties": {"ends": ["cache", "cache-store"],
                                    "bandwidth_mbps": 1500}},
        "fw-ha": {"type": "ATT::QoS::DiversityZone",
                  "properties": {"level": "rack",
                                 "members": ["fw1", "fw2"]}},
    },
}


def main() -> None:
    cloud = build_datacenter(num_racks=6, hosts_per_rack=8)
    ostro = Ostro(cloud)
    wrapper = OstroHeatWrapper(ostro)

    response = wrapper.handle(
        VNF_CHAIN_TEMPLATE,
        stack_name="vnf-chain",
        algorithm="dba*",
        deadline_s=1.0,
    )
    result = response.result
    print("Ostro placement for the VNF chain:")
    print(f"  reserved bandwidth: {result.reserved_bw_mbps:.0f} Mbps")
    print(f"  new active hosts:   {result.new_active_hosts}")
    print(f"  runtime:            {result.runtime_s:.3f} s\n")

    print("annotated resources (scheduler_hints added by the wrapper):")
    for name, resource in response.annotated_template["resources"].items():
        hints = resource.get("properties", {}).get("scheduler_hints")
        if hints:
            print(f"  {name:12} -> {json.dumps(hints)}")

    # Deploy through the Nova/Cinder surrogates on a fresh state.
    engine = HeatEngine(DataCenterState(cloud))
    stack = engine.deploy(response.annotated_template, "vnf-chain")
    print("\ndeployed stack (via Nova/Cinder with forced hosts):")
    mismatches = 0
    for name in sorted(response.result.placement.assignments):
        expected = cloud.hosts[result.placement.host_of(name)].name
        actual = stack.host_of(name)
        marker = "ok" if expected == actual else "MISMATCH"
        mismatches += expected != actual
        print(f"  {name:12} on {actual:16} [{marker}]")
    print(
        "\npipeline round-trip "
        + ("succeeded: engine honored every hint." if not mismatches
           else f"FAILED: {mismatches} resources diverged.")
    )
    fw1 = cloud.host_by_name(stack.host_of("fw1"))
    fw2 = cloud.host_by_name(stack.host_of("fw2"))
    print(f"firewall anti-affinity: fw1 in {fw1.rack.name}, "
          f"fw2 in {fw2.rack.name}")


if __name__ == "__main__":
    main()
