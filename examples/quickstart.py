#!/usr/bin/env python3
"""Quickstart: place a small three-tier application with Ostro.

Builds a 4-rack data center, describes a web/app/db topology with
bandwidth pipes and an anti-affinity zone for the database replicas, and
compares Ostro's holistic placement against OpenStack-style independent
scheduling.

Run:  python examples/quickstart.py
"""

from repro import ApplicationTopology, DiversityLevel, Ostro
from repro.datacenter import DataCenterState, build_datacenter
from repro.openstack import NovaScheduler, ServerRequest


def build_app() -> ApplicationTopology:
    app = ApplicationTopology("shop")
    for i in range(2):
        app.add_vm(f"web{i}", vcpus=1, mem_gb=2)
    for i in range(2):
        app.add_vm(f"app{i}", vcpus=2, mem_gb=4)
    for i in range(2):
        app.add_vm(f"db{i}", vcpus=4, mem_gb=8)
        app.add_volume(f"dbvol{i}", size_gb=200)
        app.connect(f"db{i}", f"dbvol{i}", bw_mbps=400)
    for i in range(2):
        for j in range(2):
            app.connect(f"web{i}", f"app{j}", bw_mbps=100)
            app.connect(f"app{i}", f"db{j}", bw_mbps=150)
    # database replicas on different racks, ditto their volumes (each
    # replica may still sit next to its own volume)
    app.add_zone("db-ha", DiversityLevel.RACK, ["db0", "db1"])
    app.add_zone("dbvol-ha", DiversityLevel.RACK, ["dbvol0", "dbvol1"])
    return app


def main() -> None:
    cloud = build_datacenter(num_racks=4, hosts_per_rack=8)
    app = build_app()

    print(f"placing {app.name!r}: {len(app.vms())} VMs, "
          f"{len(app.volumes())} volumes, {len(app.links)} pipes\n")

    ostro = Ostro(cloud)
    for algorithm in ("egc", "eg", "dba*"):
        result = ostro.place(app, algorithm=algorithm, commit=False)
        print(f"{algorithm:>5}: reserved {result.reserved_bw_mbps:7.0f} Mbps "
              f"across the network, {result.new_active_hosts} new hosts, "
              f"{result.runtime_s * 1000:6.1f} ms")

    # Contrast: OpenStack-style independent per-VM scheduling (no pipes,
    # no zones, RAM-spreading weigher).
    nova_state = DataCenterState(cloud)
    nova = NovaScheduler(nova_state)
    hosts = {}
    for vm in app.vms():
        server = nova.create_server(
            ServerRequest(vm.name, vm.vcpus, vm.mem_gb)
        )
        hosts[vm.name] = server.host
    spread = len(set(hosts.values()))
    print(f"\nNova alone spread {len(hosts)} VMs over {spread} hosts "
          "(it cannot see the pipes between them).")

    # Commit the holistic placement and show where everything landed.
    result = ostro.place(app, algorithm="dba*", deadline_s=1.0)
    print("\nfinal placement (DBA*):")
    for name in sorted(app.nodes):
        assignment = result.placement.assignments[name]
        host = cloud.hosts[assignment.host]
        where = host.name
        if assignment.disk is not None:
            where += f" / {cloud.disks[assignment.disk].name}"
        print(f"  {name:8} -> {where}")


if __name__ == "__main__":
    main()
