#!/usr/bin/env python3
"""Online adaptation (Section IV-E): grow a deployed application.

Deploys a multi-tier application, then grows its first tier by 10% and
lets Ostro re-place incrementally: unchanged nodes stay pinned to their
hosts, only the new VMs are searched, and the update completes in a
fraction of the original placement time.

Run:  python examples/online_adaptation.py
"""

from repro.core.greedy import GreedyConfig
from repro.core.heuristic import EstimatorConfig
from repro.core.online import add_vms_to_tier
from repro.core.scheduler import Ostro
from repro.datacenter import build_datacenter
from repro.workloads.multitier import build_multitier


def main() -> None:
    cloud = build_datacenter(num_racks=12)
    config = GreedyConfig(
        max_full_candidates=12, estimator=EstimatorConfig(max_nodes=24)
    )
    ostro = Ostro(cloud, greedy_config=config)

    topology = build_multitier(total_vms=50, heterogeneous=True)
    initial = ostro.place(topology, algorithm="eg")
    print(
        f"initial placement of {topology.size()} VMs: "
        f"{initial.reserved_bw_mbps:.0f} Mbps reserved, "
        f"{initial.runtime_s:.2f} s"
    )

    grown = add_vms_to_tier(topology, "tier1", fraction=0.10)
    added = grown.size() - topology.size()
    update = ostro.update(grown, algorithm="dba*", deadline_s=0.3)
    print(
        f"added {added} VMs to tier 1: re-placement took "
        f"{update.result.runtime_s:.3f} s "
        f"(paper reports < 0.3 s for +10% on a 200-VM topology)"
    )
    print(f"existing nodes moved: {len(update.moved)}")
    print(f"progressive unpin rounds: {update.unpin_rounds}")

    for name in sorted(grown.nodes - topology.nodes.keys()):
        host = cloud.hosts[update.result.placement.host_of(name)]
        print(f"  new VM {name} -> {host.name}")


if __name__ == "__main__":
    main()
