#!/usr/bin/env python3
"""Capacity planning under churn: how schedulers behave as the cloud fills.

Replays the same Poisson stream of tenant applications (arrivals,
lifetimes, departures) against the same data center with three placement
algorithms and reports admission statistics. The trade-off to look for:
EGC's pure bin-packing squeezes in the most tenants when raw compute is
the bottleneck, but it reserves far more network bandwidth per tenant
(Table I); EG/EGBW spend a little admission headroom to keep flows local.
Rerun with network-heavy tenants (crank the pipe bandwidths in
``default_app_factory``) and the ranking flips.

Run:  python examples/churn_capacity_planning.py
"""

from repro.datacenter import build_datacenter
from repro.sim.arrivals import WorkloadTrace, default_app_factory, replay


def main() -> None:
    cloud = build_datacenter(num_racks=2, hosts_per_rack=8)
    trace = WorkloadTrace.poisson(
        arrivals=60,
        app_factory=default_app_factory,
        mean_interarrival_s=15,
        mean_lifetime_s=900,  # ~60 concurrent tenants: the cloud runs hot
        seed=42,
    )
    print(
        f"trace: {len(trace.topologies)} tenants over "
        f"{trace.events[-1].time / 60:.0f} simulated minutes, "
        f"{cloud.num_hosts}-host data center\n"
    )
    print(f"{'algorithm':>9}  {'accepted':>8}  {'rejected':>8}  "
          f"{'acceptance':>10}  {'peak cpu':>8}")
    for algorithm in ("egc", "egbw", "eg"):
        report = replay(trace, cloud, algorithm=algorithm)
        print(
            f"{algorithm:>9}  {report.accepted:8d}  {report.rejected:8d}  "
            f"{report.acceptance_rate:10.1%}  "
            f"{report.peak_cpu_used_frac:8.1%}"
        )
    print("\nEvery algorithm saw the identical tenant stream; differences "
          "come only from how placements fragment capacity. Compare with "
          "'repro sweep fig7' for the bandwidth each algorithm paid.")


if __name__ == "__main__":
    main()
