"""Fig. 9: run-time comparison for the multi-tier application.

Rendered from the same runs as Fig. 7: EG's runtime stays close to EGC's
and EGBW's, while DBA* spends (much) longer -- it searches until its
deadline under heterogeneity; under homogeneous/uniform conditions the
first EG bound is tight and everything is faster.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, save_report
from benchmarks.test_fig7_multitier_bandwidth import EXPERIMENT as FIG7
from repro.sim.experiment import run_placement
from repro.sim.reporting import format_series
from repro.sim.scenarios import multitier_scenario, sweep_sizes


def test_fig9_report(benchmark, collected):
    rows = collected.get(FIG7)
    if rows is None:
        scenario = multitier_scenario(True)
        size = sweep_sizes("multitier", True)[0]
        rows = [
            run_once(
                benchmark,
                lambda a=a: run_placement(a, scenario, size, seed=0),
            )
            for a in ("egc", "egbw", "eg", "dba*")
        ]
    else:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    parts = []
    for heterogeneous, label in ((True, "9a heterogeneous"), (False, "9b homogeneous")):
        subset = [r for r in rows if r.heterogeneous == heterogeneous]
        if not subset:
            continue
        parts.append(
            format_series(
                subset,
                metric="runtime_s",
                algorithms=["EGC", "EGBW", "EG", "DBA*"],
                title=f"Fig {label}: multitier scheduler runtime (s)",
            )
        )
    save_report("fig9-multitier", "\n\n".join(parts))
    het = [r for r in rows if r.heterogeneous]
    top = max(r.size for r in het)
    at_top = {r.algorithm: r for r in het if r.size == top}
    assert at_top["EGC"].runtime_s <= at_top["EG"].runtime_s
    assert at_top["DBA*"].runtime_s >= at_top["EG"].runtime_s
