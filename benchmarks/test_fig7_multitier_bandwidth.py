"""Fig. 7: bandwidth reserved for the multi-tier application.

Paper setup: sizes 25..200 under (a) heterogeneous requirements on the
Table-IV-loaded data center and (b) homogeneous requirements on the idle
one; comparing EGC, EGBW, EG, DBA*. Expected shape: EGC reserves far more
bandwidth than everyone else, EGBW the least, EG and DBA* in between with
DBA* <= EG; gaps grow with size and are wider under heterogeneity.

This module also feeds Figs. 8 and 9 (hosts used / runtime come from the
same runs); the sibling modules render those series from the shared
collector without re-running the placements.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.sim.experiment import run_placement
from repro.sim.reporting import format_series
from repro.sim.scenarios import multitier_scenario, sweep_sizes

EXPERIMENT = "fig7-multitier"
ALGORITHMS = ("egc", "egbw", "eg", "dba*")
REGIMES = (True, False)


def _cases():
    for heterogeneous in REGIMES:
        for size in sweep_sizes("multitier", heterogeneous):
            for algorithm in ALGORITHMS:
                yield heterogeneous, size, algorithm


@pytest.mark.parametrize(
    "heterogeneous,size,algorithm",
    list(_cases()),
    ids=lambda v: str(v).replace("True", "het").replace("False", "hom"),
)
def test_fig7_runs(benchmark, collected, heterogeneous, size, algorithm):
    scenario = multitier_scenario(heterogeneous)
    row = run_once(
        benchmark,
        lambda: run_placement(algorithm, scenario, size, seed=0),
    )
    collected.setdefault(EXPERIMENT, []).append(row)


def test_fig7_report(benchmark, collected):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = collected.get(EXPERIMENT, [])
    assert rows, "run the whole module"
    parts = []
    for heterogeneous, label in ((True, "7a heterogeneous"), (False, "7b homogeneous")):
        subset = [r for r in rows if r.heterogeneous == heterogeneous]
        parts.append(
            format_series(
                subset,
                metric="reserved_bw_gbps",
                algorithms=["EGC", "EGBW", "EG", "DBA*"],
                title=f"Fig {label}: multitier reserved bandwidth (Gbps)",
            )
        )
    save_report(EXPERIMENT, "\n\n".join(parts))
    # shape assertions at the largest common size, heterogeneous regime
    het = [r for r in rows if r.heterogeneous]
    top = max(r.size for r in het)
    at_top = {r.algorithm: r for r in het if r.size == top}
    assert at_top["EGC"].reserved_bw_mbps > at_top["EG"].reserved_bw_mbps
    assert at_top["EGBW"].reserved_bw_mbps <= at_top["EG"].reserved_bw_mbps
    assert (
        at_top["DBA*"].reserved_bw_mbps
        <= at_top["EG"].reserved_bw_mbps + 1e-9
    )
