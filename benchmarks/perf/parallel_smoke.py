#!/usr/bin/env python
"""CI smoke check for the parallel experiment-execution layer.

Runs one small multitier sweep twice -- serially and fanned across
worker processes -- and exits non-zero unless the aggregated rows are
identical (wall-clock ``runtime_s`` aside, which the fingerprint
excludes). This is the determinism contract of ``repro.sim.parallel``:
``--workers N`` must be a pure wall-clock optimization.

Usage (from the repository root):

    PYTHONPATH=src python benchmarks/perf/parallel_smoke.py [--workers 2]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"),
)

from repro.sim.metrics import rows_fingerprint  # noqa: E402
from repro.sim.runner import sweep  # noqa: E402
from repro.sim.scenarios import multitier_scenario  # noqa: E402

# The deterministic greedy trio: identical output under any machine
# load. DBA* is deliberately absent -- how much search fits before a
# binding wall-clock deadline varies with contention, serial or not.
SIZES = [10, 20]
ALGORITHMS = ["egc", "egbw", "eg"]
SEEDS = (0, 1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    scenario = multitier_scenario()
    serial = sweep(scenario, ALGORITHMS, SIZES, seeds=SEEDS)
    parallel = sweep(
        scenario,
        ALGORITHMS,
        SIZES,
        seeds=SEEDS,
        workers=args.workers,
    )

    fp_serial = rows_fingerprint(serial)
    fp_parallel = rows_fingerprint(parallel)
    print(f"rows: serial={len(serial)} parallel={len(parallel)}")
    print(f"fingerprint serial:   {fp_serial}")
    print(f"fingerprint workers={args.workers}: {fp_parallel}")
    if fp_serial != fp_parallel:
        print("FAIL: parallel sweep diverged from the serial loop")
        for a, b in zip(serial, parallel):
            if a != b:
                print(f"  serial:   {a}")
                print(f"  parallel: {b}")
        return 1
    print("OK: parallel rows identical to serial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
