#!/usr/bin/env python
"""CI smoke check for the batched, pod-sharded admission service.

Runs one small Poisson arrival storm through the full pipeline twice --
serial reference ordering (``max_batch=1``) and batched -- and exits
non-zero unless (a) the two decision-trajectory fingerprints are
byte-identical and (b) every capacity-conservation audit across the
shard boundary came back clean. This is the determinism contract of
``repro.service``: batching and sharding are pure wall-clock
optimizations over the serial admission order (see docs/SERVICE.md).

Usage (from the repository root):

    PYTHONPATH=src python benchmarks/perf/service_smoke.py [--arrivals 80]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"),
)

from repro.datacenter.builder import build_cloud  # noqa: E402
from repro.service import ServiceConfig, run_service  # noqa: E402
from repro.sim.arrivals import (  # noqa: E402
    WorkloadTrace,
    default_app_factory,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arrivals", type=int, default=80)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    cloud = build_cloud(
        num_datacenters=1, pods_per_dc=4, racks_per_pod=2, hosts_per_rack=4
    )
    trace = WorkloadTrace.poisson_storm(
        args.arrivals,
        default_app_factory,
        mean_interarrival_s=15.0,
        mean_lifetime_s=400.0,
        seed=args.seed,
        burst_every_s=300.0,
        burst_len_s=60.0,
        burst_factor=4.0,
        priority_levels=3,
        update_fraction=0.25,
    )
    config = ServiceConfig(horizon_s=30.0, max_batch=16, deadline_s=180.0)
    serial = run_service(trace, cloud, config, serial=True)
    batched = run_service(trace, cloud, config)

    print(
        f"requests: {serial.requests}  "
        f"admitted serial={serial.admitted} batched={batched.admitted}"
    )
    print(f"fingerprint serial:  {serial.fingerprint}")
    print(f"fingerprint batched: {batched.fingerprint}")
    print(
        f"batches: {batched.batches}  escalations: {batched.escalations}"
    )
    rc = 0
    if serial.fingerprint != batched.fingerprint:
        print("FAIL: batched admission diverged from the serial ordering")
        rc = 1
    violations = serial.audit_violations + batched.audit_violations
    if violations:
        print(f"FAIL: {len(violations)} conservation violations:")
        for violation in violations:
            print(f"  {violation}")
        rc = 1
    if batched.batches["joint"] == 0:
        print("FAIL: no joint batches formed -- the gate would be vacuous")
        rc = 1
    if rc == 0:
        print("OK: batched fingerprint identical, all audits clean")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
