#!/usr/bin/env python
"""CI gate for ostrolint's incremental-cache performance.

Lints ``src/repro`` twice against a scratch cache -- once cold, once
warm -- and exits non-zero unless:

* the cold run fits the wall-clock budget (generous: it only exists to
  catch an accidental quadratic blow-up in the analysis),
* the warm run is at least ``MIN_SPEEDUP``x faster than the cold one
  (or absolutely fast, for machines where the cold run is already
  near-instant), and
* the two runs' reports are byte-identical -- the cache must be a pure
  wall-clock optimization.

Usage (from the repository root):

    PYTHONPATH=src python benchmarks/perf/lint_perf.py
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"),
)

from repro.lint import LintCache, lint_paths, render_json  # noqa: E402

#: Cold-run wall-clock budget (seconds). The full tree takes ~3-4s on a
#: developer laptop; 30s only trips on a complexity regression.
COLD_BUDGET_S = 30.0

#: Warm runs must beat the cold run by at least this factor ...
MIN_SPEEDUP = 5.0

#: ... unless they are already this fast in absolute terms (a tiny tree
#: or a very fast machine leaves no room for a 5x ratio).
WARM_FAST_ENOUGH_S = 0.3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paths", nargs="*", default=["src/repro"])
    parser.add_argument("--cold-budget", type=float, default=COLD_BUDGET_S)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="ostrolint-perf-") as tmp:
        cache_path = Path(tmp) / "cache.json"

        cache = LintCache(cache_path)
        t0 = time.perf_counter()
        cold_diags, cold_checked = lint_paths(args.paths, cache=cache)
        cold_s = time.perf_counter() - t0
        cache.save()

        cache = LintCache(cache_path)
        t0 = time.perf_counter()
        warm_diags, warm_checked = lint_paths(args.paths, cache=cache)
        warm_s = time.perf_counter() - t0

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"lint-perf: {cold_checked} files | cold {cold_s:.2f}s | "
        f"warm {warm_s:.2f}s | speedup {speedup:.1f}x"
    )

    failures = []
    if cold_s > args.cold_budget:
        failures.append(
            f"cold run {cold_s:.2f}s exceeds budget {args.cold_budget:.1f}s"
        )
    if speedup < MIN_SPEEDUP and warm_s > WARM_FAST_ENOUGH_S:
        failures.append(
            f"warm speedup {speedup:.1f}x below {MIN_SPEEDUP:.1f}x "
            f"(warm {warm_s:.2f}s > {WARM_FAST_ENOUGH_S:.2f}s)"
        )
    cold_report = render_json(cold_diags, cold_checked)
    warm_report = render_json(warm_diags, warm_checked)
    if cold_report != warm_report:
        failures.append("warm report differs from cold report")

    for failure in failures:
        print(f"lint-perf: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
