#!/usr/bin/env python
"""CI smoke check for the continuous background defragmenter.

Runs the canned fragmented chaos scenario (host crashes with quick
repairs scatter tenants, revived hosts come back empty -- see
``repro.bench.defrag_chaos_case``) across several seeds and exits
non-zero unless, for every seed:

* zero capacity leaks across the baseline, defrag-disabled, and
  defrag-on runs (``Ostro.verify_state`` audits after every operation);
* a run with the defragmenter constructed but *disabled* reproduces the
  no-defrag baseline's placement fingerprint bit-for-bit (the
  determinism contract of ``repro.defrag``);
* the defrag-on run recovers fragmentation (``frag_recovered > 0``) --
  a vacuous pass would mean the canned scenario stopped fragmenting.

Usage (from the repository root):

    PYTHONPATH=src python benchmarks/perf/defrag_smoke.py [--seeds 3]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"),
)

from repro.bench import defrag_benchmark  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3)
    args = parser.parse_args(argv)

    rc = 0
    for seed in range(args.seeds):
        payload = defrag_benchmark(seed=seed)
        print(
            f"seed {seed}: frag recovered {payload['frag_recovered']:+.5f} "
            f"in {payload['defrag_passes']} passes "
            f"({payload['defrag_moves']} moves, "
            f"{payload['defrag_move_seconds']:.1f} VM-move-s), "
            f"leaks={payload['leaks']}, disabled-fingerprint identical: "
            f"{payload['disabled_fingerprint_identical']}"
        )
        if payload["leaks"] != 0:
            print(f"FAIL: seed {seed} leaked capacity")
            rc = 1
        if not payload["disabled_fingerprint_identical"]:
            print(
                f"FAIL: seed {seed}: a disabled defragmenter perturbed "
                "the run (must be bit-identical to the no-defrag "
                "baseline)"
            )
            rc = 1
        if payload["frag_recovered"] <= 0:
            print(
                f"FAIL: seed {seed} recovered no fragmentation -- the "
                "canned scenario gate is vacuous"
            )
            rc = 1
    if rc == 0:
        print("OK: all seeds recovered fragmentation with zero leaks")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
