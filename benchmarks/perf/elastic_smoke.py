#!/usr/bin/env python
"""CI smoke check for the autoscaling / elasticity lifecycle.

Runs a scaled-down elasticity storm (every tenant emits periodic scale
evaluations; the threshold policy grows and shrinks live tiers through
the online-update and scale-in paths) across several seeds and exits
non-zero unless, for every seed:

* zero capacity leaks across the scaling-free baseline, the
  scaling-disabled run, and both scaled runs (``Ostro.verify_state``
  audits after every operation);
* a run with scaling constructed but *disabled* reproduces the
  scaling-free baseline's decision-trajectory fingerprint bit-for-bit
  (the determinism contract of ``repro.scaling``: skipped scale events
  leave no trace);
* two same-seed scaled runs produce byte-identical fingerprints;
* the scaled run actually scaled (a vacuous gate would mean the storm
  stopped emitting actionable scale events).

Usage (from the repository root):

    PYTHONPATH=src python benchmarks/perf/elastic_smoke.py [--seeds 3]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"),
)

from repro.bench import elastic_benchmark  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--arrivals", type=int, default=150)
    args = parser.parse_args(argv)

    rc = 0
    for seed in range(args.seeds):
        payload = elastic_benchmark(
            arrivals=args.arrivals,
            mean_interarrival_s=60.0,
            mean_lifetime_s=3600.0,
            scale_every_s=600.0,
            seed=seed,
        )
        print(
            f"seed {seed}: {payload['scale_events']} scale events -> "
            f"{payload['scale_outs']} out / {payload['scale_ins']} in "
            f"(+{payload['vms_added']}/-{payload['vms_removed']} VMs, "
            f"{payload['scale_consolidation_moves']} consolidation moves), "
            f"leaks={payload['leaks']}, "
            f"disabled identical: "
            f"{payload['disabled_fingerprint_identical']}, "
            f"repeat identical: {payload['scaled_fingerprints_identical']}"
        )
        if payload["leaks"]:
            print(f"FAIL: seed {seed} leaked capacity")
            rc = 1
        if not payload["disabled_fingerprint_identical"]:
            print(
                f"FAIL: seed {seed} scaling-disabled run diverged from "
                f"the scaling-free baseline"
            )
            rc = 1
        if not payload["scaled_fingerprints_identical"]:
            print(
                f"FAIL: seed {seed} same-seed scaled runs were not "
                f"byte-identical"
            )
            rc = 1
        if payload["scale_outs"] + payload["scale_ins"] == 0:
            print(f"FAIL: seed {seed} never scaled -- the gate is vacuous")
            rc = 1
    if rc == 0:
        print(
            "OK: all seeds leak-free, disabled runs bit-identical, "
            "scaled runs reproducible"
        )
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
