#!/usr/bin/env python
"""CI wrapper around the ``repro.bench`` harness.

Usage (from the repository root):

    PYTHONPATH=src python benchmarks/perf/run.py               # run + write
    PYTHONPATH=src python benchmarks/perf/run.py --check       # gate vs baseline
    PYTHONPATH=src python benchmarks/perf/run.py --update-baseline

``--check`` exits non-zero when any gated algorithm's deterministic work
counters or placement fingerprint deviate from ``baseline.json``, or when
its machine-normalized cost regresses by more than the tolerance (25% by
default). ``--update-baseline`` rewrites ``baseline.json`` from a fresh
run; commit the result when a change is intentional.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src"),
)

from repro import bench  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--scenarios", nargs="*", default=None)
    parser.add_argument(
        "--out-dir", default=os.path.dirname(__file__) or "."
    )
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args(argv)

    results = bench.run_suite(
        repeats=args.repeats, scenarios=args.scenarios
    )
    for path in bench.write_results(results, args.out_dir):
        print(f"wrote {path}")

    if args.update_baseline:
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(
                bench.baseline_payload(results), fh, indent=2, sort_keys=True
            )
            fh.write("\n")
        print(f"wrote {BASELINE_PATH}")
        return 0

    if args.check:
        with open(BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = bench.compare_to_baseline(
            results, baseline, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("benchmark smoke check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
