"""Fig. 10: bandwidth and runtime for the mesh-communication application.

Paper setup: mesh topologies (5-VM host-diverse zones, ~80% of zone pairs
linked) at sizes 25..200 heterogeneous / 35..280 homogeneous. Expected
shape: same algorithm ordering as the multi-tier case, but the absolute
bandwidth is much larger (every VM carries many links) and so are the
runtimes; DBA* beats every greedy baseline on bandwidth for the complex
heterogeneous meshes.

This module also feeds Fig. 11 (hosts used, same runs).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.sim.experiment import run_placement
from repro.sim.reporting import format_series
from repro.sim.scenarios import mesh_scenario, sweep_sizes

EXPERIMENT = "fig10-mesh"
ALGORITHMS = ("egc", "egbw", "eg", "dba*")
REGIMES = (True, False)


def _cases():
    for heterogeneous in REGIMES:
        for size in sweep_sizes("mesh", heterogeneous):
            for algorithm in ALGORITHMS:
                yield heterogeneous, size, algorithm


@pytest.mark.parametrize(
    "heterogeneous,size,algorithm",
    list(_cases()),
    ids=lambda v: str(v).replace("True", "het").replace("False", "hom"),
)
def test_fig10_runs(benchmark, collected, heterogeneous, size, algorithm):
    scenario = mesh_scenario(heterogeneous)
    row = run_once(
        benchmark,
        lambda: run_placement(algorithm, scenario, size, seed=0),
    )
    collected.setdefault(EXPERIMENT, []).append(row)


def test_fig10_report(benchmark, collected):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = collected.get(EXPERIMENT, [])
    assert rows, "run the whole module"
    parts = []
    for heterogeneous, label in ((True, "het"), (False, "hom")):
        subset = [r for r in rows if r.heterogeneous == heterogeneous]
        parts.append(
            format_series(
                subset,
                metric="reserved_bw_gbps",
                algorithms=["EGC", "EGBW", "EG", "DBA*"],
                title=f"Fig 10{'a' if heterogeneous else 'b'} ({label}): "
                "mesh reserved bandwidth (Gbps)",
            )
        )
        parts.append(
            format_series(
                subset,
                metric="runtime_s",
                algorithms=["EGC", "EGBW", "EG", "DBA*"],
                title=f"Fig 10{'c' if heterogeneous else 'd'} ({label}): "
                "mesh scheduler runtime (s)",
            )
        )
    save_report(EXPERIMENT, "\n\n".join(parts))
    het = [r for r in rows if r.heterogeneous]
    top = max(r.size for r in het)
    at_top = {r.algorithm: r for r in het if r.size == top}
    assert at_top["EGC"].reserved_bw_mbps > at_top["EG"].reserved_bw_mbps
    assert (
        at_top["DBA*"].reserved_bw_mbps <= at_top["EG"].reserved_bw_mbps + 1e-9
    )
    assert at_top["DBA*"].runtime_s >= at_top["EG"].runtime_s


def test_fig10_mesh_heavier_than_multitier(benchmark, collected):
    """The paper's observation: the mesh workload reserves significantly
    more bandwidth than the multi-tier one at equal size."""
    from repro.sim.scenarios import multitier_scenario

    size = sweep_sizes("mesh", True)[1]
    mesh_row = run_once(
        benchmark,
        lambda: run_placement("eg", mesh_scenario(True), size, seed=0),
    )
    tier_row = run_placement("eg", multitier_scenario(True), size, seed=0)
    assert mesh_row.reserved_bw_mbps > tier_row.reserved_bw_mbps
