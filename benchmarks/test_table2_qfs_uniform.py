"""Table II: QFS placement under uniform resource availability.

Same as Table I but every testbed host starts idle. Expected shape: every
algorithm except EGC converges to the same (minimum) reserved bandwidth
and the same host count -- the host count is fixed by the chunk-volume
diversity zone -- and the searches terminate much faster than in the
non-uniform case because the first EG run bounds the space tightly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.sim.experiment import run_placement
from repro.sim.reporting import format_table
from repro.sim.scenarios import qfs_testbed_scenario

EXPERIMENT = "table2"
ALGORITHMS = ("egc", "egbw", "eg", "ba*", "dba*")
_EXTRA = {"ba*": {"max_expansions": 500}, "dba*": {"deadline_s": 0.5}}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table2(benchmark, collected, algorithm):
    scenario = qfs_testbed_scenario(uniform=True)
    row = run_once(
        benchmark,
        lambda: run_placement(
            algorithm,
            scenario,
            size=12,
            seed=0,
            **_EXTRA.get(algorithm, {}),
        ),
    )
    collected.setdefault(EXPERIMENT, {})[row.algorithm] = row
    assert row.reserved_bw_mbps > 0


def test_table2_report(benchmark, collected):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = collected.get(EXPERIMENT, {})
    assert len(rows) == len(ALGORITHMS), "run the whole module"
    save_report(
        EXPERIMENT,
        format_table(
            list(rows.values()),
            algorithms=["EGC", "EGBW", "EG", "BA*", "DBA*"],
            title="Table II: QFS under uniform resource availability "
            "(paper: EGC 2380, all others 1980; 4 new hosts each)",
        ),
    )
    optimal = rows["EG"].reserved_bw_mbps
    for label in ("EGBW", "BA*", "DBA*"):
        assert rows[label].reserved_bw_mbps == pytest.approx(optimal)
    assert rows["EGC"].reserved_bw_mbps > optimal
    # new-host counts identical across algorithms (set by diversity zones)
    host_counts = {rows[l].new_active_hosts for l in ("EGBW", "EG", "BA*", "DBA*")}
    assert len(host_counts) == 1
    # uniform availability bounds the search much faster than Table I
    assert rows["DBA*"].runtime_s < 2.0
