"""Fig. 6: tradeoff between the DBA* deadline T and placement optimality.

Paper setup: DBA* on the 200-VM heterogeneous multi-tier topology over the
2400-host data center, sweeping the time budget T; both reserved bandwidth
and newly-used hosts drop steeply as T grows, then flatten. Reduced scale
runs the 50-VM topology on the 384-host data center with a proportional
deadline range (REPRO_FULL_SCALE=1 restores the paper's sizes).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.sim.experiment import run_placement
from repro.sim.scenarios import full_scale, multitier_scenario

EXPERIMENT = "fig6"
SIZE = 200 if full_scale() else 50
DEADLINES = (5.0, 10.0, 20.0, 40.0) if full_scale() else (2.0, 5.0, 10.0, 20.0)


@pytest.mark.parametrize("deadline", DEADLINES)
def test_fig6(benchmark, collected, deadline):
    scenario = multitier_scenario(heterogeneous=True)
    row = run_once(
        benchmark,
        lambda: run_placement(
            "dba*", scenario, SIZE, seed=0, deadline_s=deadline
        ),
    )
    collected.setdefault(EXPERIMENT, {})[deadline] = row


def test_fig6_report(benchmark, collected):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = collected.get(EXPERIMENT, {})
    assert len(rows) == len(DEADLINES), "run the whole module"
    lines = [
        f"Fig 6: DBA* deadline/optimality tradeoff "
        f"(multitier {SIZE} VMs, heterogeneous; paper: both curves fall "
        "steeply then flatten)",
        f"{'T (s)':>8}  {'bandwidth (Gbps)':>17}  {'new hosts':>9}  {'runtime':>8}",
    ]
    for deadline in DEADLINES:
        row = rows[deadline]
        lines.append(
            f"{deadline:8.1f}  {row.reserved_bw_gbps:17.2f}  "
            f"{row.new_active_hosts:9.0f}  {row.runtime_s:7.2f}s"
        )
    save_report(EXPERIMENT, "\n".join(lines))
    # larger budgets never hurt, and the largest budget strictly improves
    # on the smallest (the paper's headline tradeoff)
    first = rows[DEADLINES[0]]
    last = rows[DEADLINES[-1]]
    assert last.objective_value <= first.objective_value + 1e-9