"""Shared machinery for the paper-reproduction benchmarks.

Every bench regenerates one table or figure of the paper: it runs the
real placements (timed by pytest-benchmark), collects the paper's metrics
from the results, prints the paper-style table/series, and saves it under
``benchmarks/results/``. EXPERIMENTS.md records the paper-vs-measured
comparison for each artifact.

Scale: benches default to the reduced scale documented in
``repro.sim.scenarios`` (the qualitative relationships are preserved);
``REPRO_FULL_SCALE=1`` switches to the paper's exact scales.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")


@pytest.fixture(scope="session")
def collected() -> Dict[str, dict]:
    """Session-wide row collector keyed by experiment name."""
    return {}


def run_once(benchmark, fn):
    """Run a placement exactly once under pytest-benchmark timing.

    Placements take seconds; multiple rounds would multiply the suite's
    runtime without adding information (the scheduler is deterministic for
    a fixed seed).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
