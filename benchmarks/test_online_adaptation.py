"""Online adaptation (Section IV-E).

Paper setup: add 10% more small VMs to the first or second tier of the
200-VM multi-tier topology; the incremental re-placement completes within
0.3 s using DBA* and typically leaves existing nodes in place. Reduced
scale uses the 50-VM topology; the budget scales with the instance.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.core.online import add_vms_to_tier
from repro.core.scheduler import Ostro
from repro.sim.scenarios import full_scale, multitier_scenario
from repro.workloads.multitier import build_multitier

EXPERIMENT = "online-adaptation"
SIZE = 200 if full_scale() else 50
TIERS = ("tier1", "tier2")


@pytest.mark.parametrize("tier", TIERS)
def test_online_update(benchmark, collected, tier):
    scenario = multitier_scenario(heterogeneous=True)
    cloud = scenario.build_cloud()
    ostro = Ostro(
        cloud,
        scenario.build_state(cloud, 0),
        greedy_config=scenario.greedy_config,
    )
    topology = build_multitier(total_vms=SIZE, heterogeneous=True)
    initial = ostro.place(topology, algorithm="eg")
    grown = add_vms_to_tier(topology, tier, fraction=0.10)

    update = run_once(
        benchmark,
        lambda: ostro.update(grown, algorithm="dba*", deadline_s=0.3),
    )
    collected.setdefault(EXPERIMENT, {})[tier] = (initial, update)
    # incremental re-placement is far cheaper than the initial placement
    assert update.result.runtime_s < initial.runtime_s
    # the update covers every node, including the new ones
    assert set(update.result.placement.assignments) == set(grown.nodes)


def test_online_report(benchmark, collected):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = collected.get(EXPERIMENT, {})
    assert len(results) == len(TIERS), "run the whole module"
    lines = [
        f"Online adaptation: +10% small VMs on a {SIZE}-VM multitier "
        "(paper: new optimization completed within 0.3 s using DBA*)",
        f"{'tier':>6}  {'initial (s)':>11}  {'update (s)':>10}  "
        f"{'added':>5}  {'moved':>5}",
    ]
    for tier in TIERS:
        initial, update = results[tier]
        lines.append(
            f"{tier:>6}  {initial.runtime_s:11.2f}  "
            f"{update.result.runtime_s:10.3f}  "
            f"{len(update.added):5d}  {len(update.moved):5d}"
        )
    save_report(EXPERIMENT, "\n".join(lines))
    for tier in TIERS:
        _, update = results[tier]
        assert update.result.runtime_s < 1.5  # paper: 0.3 s at full scale
