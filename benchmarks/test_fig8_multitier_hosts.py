"""Fig. 8: total hosts used for the multi-tier application.

Rendered from the same runs as Fig. 7 (see test_fig7_multitier_bandwidth).
The paper plots *total used hosts* in the data center -- background-loaded
hosts plus whatever the new application activates (its y axis starts near
the background level, 1780 of 2400): EGC activates the fewest new hosts
(it packs into already-loaded ones), EGBW the most (it chases idle hosts'
free bandwidth), EG and DBA* in between. We print the paper's metric plus
the per-application companion views.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, save_report
from benchmarks.test_fig7_multitier_bandwidth import EXPERIMENT as FIG7
from repro.sim.experiment import run_placement
from repro.sim.reporting import format_series
from repro.sim.scenarios import multitier_scenario, sweep_sizes


def test_fig8_report(benchmark, collected):
    rows = collected.get(FIG7)
    if rows is None:
        # standalone invocation: regenerate a minimal heterogeneous sweep
        scenario = multitier_scenario(True)
        size = sweep_sizes("multitier", True)[0]
        rows = [
            run_once(
                benchmark,
                lambda a=a: run_placement(a, scenario, size, seed=0),
            )
            for a in ("egc", "egbw", "eg", "dba*")
        ]
    else:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = [r for r in rows if r.heterogeneous]
    total = format_series(
        rows,
        metric="total_active_hosts",
        algorithms=["EGC", "EGBW", "EG", "DBA*"],
        title="Fig 8: multitier total used hosts in the data center "
        "(paper shape: EGC lowest, EGBW highest, EG/DBA* between)",
        fmt=lambda v: f"{v:.0f}",
    )
    touched = format_series(
        rows,
        metric="hosts_used",
        algorithms=["EGC", "EGBW", "EG", "DBA*"],
        title="Fig 8 (companion): hosts touched by the application",
        fmt=lambda v: f"{v:.0f}",
    )
    save_report("fig8-multitier", total + "\n\n" + touched)
    top = max(r.size for r in rows)
    at_top = {r.algorithm: r for r in rows if r.size == top}
    assert at_top["EGC"].new_active_hosts <= at_top["EG"].new_active_hosts
    assert at_top["EGBW"].new_active_hosts >= at_top["EG"].new_active_hosts
