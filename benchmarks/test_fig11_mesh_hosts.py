"""Fig. 11: hosts used for the mesh-communication application.

Rendered from the same runs as Fig. 10: EGC consolidates, EGBW spreads,
EG/DBA* in between.
"""

from __future__ import annotations

from benchmarks.conftest import run_once, save_report
from benchmarks.test_fig10_mesh import EXPERIMENT as FIG10
from repro.sim.experiment import run_placement
from repro.sim.reporting import format_series
from repro.sim.scenarios import mesh_scenario, sweep_sizes


def test_fig11_report(benchmark, collected):
    rows = collected.get(FIG10)
    if rows is None:
        scenario = mesh_scenario(True)
        size = sweep_sizes("mesh", True)[0]
        rows = [
            run_once(
                benchmark,
                lambda a=a: run_placement(a, scenario, size, seed=0),
            )
            for a in ("egc", "egbw", "eg", "dba*")
        ]
    else:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = [r for r in rows if r.heterogeneous]
    total = format_series(
        rows,
        metric="total_active_hosts",
        algorithms=["EGC", "EGBW", "EG", "DBA*"],
        title="Fig 11: mesh total used hosts in the data center "
        "(paper shape: EGC lowest, EGBW highest)",
        fmt=lambda v: f"{v:.0f}",
    )
    touched = format_series(
        rows,
        metric="hosts_used",
        algorithms=["EGC", "EGBW", "EG", "DBA*"],
        title="Fig 11 (companion): hosts touched by the application",
        fmt=lambda v: f"{v:.0f}",
    )
    save_report("fig11-mesh", total + "\n\n" + touched)
    top = max(r.size for r in rows)
    at_top = {r.algorithm: r for r in rows if r.size == top}
    assert at_top["EGC"].new_active_hosts <= at_top["EGBW"].new_active_hosts
