"""Objective-weight sensitivity (Section IV-B, final paragraph).

The paper raises theta_c from 0.01 to 0.4 on the QFS testbed experiment:
the greedy algorithms' placements stay fixed (their sorting is set up
once), while BA* and DBA* adapt to the new weighting and converge to EG's
host-frugal placement. We verify the searchers' adaptation: under the
host-heavy objective their chosen placements activate no more hosts than
under the bandwidth-heavy one, and never do worse than EG on the active
objective.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.core.objective import Objective
from repro.core.scheduler import make_algorithm
from repro.sim.scenarios import qfs_testbed_scenario

EXPERIMENT = "theta-sensitivity"
WEIGHTS = ((0.99, 0.01), (0.6, 0.4))


@pytest.mark.parametrize("theta", WEIGHTS, ids=lambda t: f"theta_c={t[1]}")
@pytest.mark.parametrize("algorithm", ("eg", "dba*"))
def test_theta(benchmark, collected, theta, algorithm):
    theta_bw, theta_c = theta
    scenario = qfs_testbed_scenario(uniform=False)
    cloud = scenario.build_cloud()
    state = scenario.build_state(cloud, 0)
    topology = scenario.build_topology(12, 0)
    objective = Objective.for_topology(topology, cloud, theta_bw, theta_c)
    options = {"greedy_config": scenario.greedy_config}
    if algorithm == "dba*":
        options["deadline_s"] = 1.0
    algo = make_algorithm(algorithm, **options)
    result = run_once(
        benchmark, lambda: algo.place(topology, cloud, state, objective)
    )
    collected.setdefault(EXPERIMENT, {})[(algorithm, theta_c)] = result


def test_theta_report(benchmark, collected):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = collected.get(EXPERIMENT, {})
    assert len(results) == 4, "run the whole module"
    lines = [
        "Theta sensitivity on the QFS testbed (paper: raising theta_c to "
        "0.4 pulls BA*/DBA* onto EG's host-frugal placement)",
        f"{'algorithm':>9}  {'theta_c':>7}  {'bandwidth':>9}  {'new hosts':>9}",
    ]
    for (algorithm, theta_c), result in sorted(results.items()):
        lines.append(
            f"{algorithm:>9}  {theta_c:7.2f}  "
            f"{result.reserved_bw_mbps:9.0f}  {result.new_active_hosts:9d}"
        )
    save_report(EXPERIMENT, "\n".join(lines))
    # under the host-heavy objective DBA* activates no more hosts than
    # under the bandwidth-heavy one ...
    assert (
        results[("dba*", 0.4)].new_active_hosts
        <= results[("dba*", 0.01)].new_active_hosts
    )
    # ... and never scores worse than EG on the same objective
    for theta_c in (0.01, 0.4):
        assert (
            results[("dba*", theta_c)].objective_value
            <= results[("eg", theta_c)].objective_value + 1e-9
        )
