"""Table I: QFS placement under non-uniform resource availability.

Paper setup (Section IV-A/B): the QFS topology of Fig. 5 placed on the
16-host testbed with 12 hosts preloaded (light/medium/constrained) and 4
idle, theta_bw = 0.99. Expected shape:

* EGC reserves roughly twice the bandwidth of every other algorithm (it
  bin-packs and ignores links) while activating no idle host;
* EGBW matches the minimum bandwidth but activates idle hosts;
* EG matches/approaches the minimum bandwidth with no new hosts;
* BA* and DBA* meet the best bandwidth; DBA* within its 0.5 s deadline,
  BA* taking orders of magnitude longer;
* runtimes: EGC < EGBW ~ EG << DBA* << BA*.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.sim.experiment import run_placement
from repro.sim.reporting import format_table
from repro.sim.scenarios import qfs_testbed_scenario

EXPERIMENT = "table1"
ALGORITHMS = ("egc", "egbw", "eg", "ba*", "dba*")
_EXTRA = {"ba*": {"max_expansions": 500}, "dba*": {"deadline_s": 0.5}}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table1(benchmark, collected, algorithm):
    scenario = qfs_testbed_scenario(uniform=False)
    row = run_once(
        benchmark,
        lambda: run_placement(
            algorithm,
            scenario,
            size=12,
            seed=0,
            **_EXTRA.get(algorithm, {}),
        ),
    )
    collected.setdefault(EXPERIMENT, {})[row.algorithm] = row
    assert row.reserved_bw_mbps > 0


def test_table1_report(benchmark, collected):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = collected.get(EXPERIMENT, {})
    assert len(rows) == len(ALGORITHMS), "run the whole module"
    save_report(
        EXPERIMENT,
        format_table(
            list(rows.values()),
            algorithms=["EGC", "EGBW", "EG", "BA*", "DBA*"],
            title="Table I: QFS under non-uniform resource availability "
            "(paper: EGC 4480/0, EGBW 1980/4, EG 2000/0, BA* 1980/1, "
            "DBA* 1980/1)",
        ),
    )
    # The paper's qualitative relationships:
    assert rows["EGC"].reserved_bw_mbps >= 1.5 * rows["EG"].reserved_bw_mbps
    assert rows["EGBW"].new_active_hosts >= 1
    assert rows["EGC"].new_active_hosts == 0
    assert rows["EG"].new_active_hosts == 0
    assert rows["EGBW"].reserved_bw_mbps <= rows["EGC"].reserved_bw_mbps
    assert rows["DBA*"].reserved_bw_mbps <= rows["EG"].reserved_bw_mbps + 1e-9
    assert rows["BA*"].reserved_bw_mbps <= rows["EG"].reserved_bw_mbps + 1e-9
    assert rows["EGC"].runtime_s < rows["DBA*"].runtime_s < rows["BA*"].runtime_s
