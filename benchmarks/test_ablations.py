"""Ablations over the design choices DESIGN.md calls out.

Not in the paper, but they quantify the pieces the reproduction adds or
makes explicit:

* EG's lower-bound estimate (vs. an immediate-cost greedy),
* the exact host equivalence-class dedup (result-preserving, big speedup),
* BA*'s node symmetry reduction (III-B3),
* DBA*'s deadline controller (vs. an unbounded run of the same search).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.core.astar import BAStar
from repro.core.greedy import EG, GreedyConfig
from repro.core.heuristic import EstimatorConfig
from repro.core.objective import Objective
from repro.datacenter.builder import build_datacenter
from repro.datacenter.loadgen import apply_table_iv_load
from repro.datacenter.state import DataCenterState
from repro.sim.scenarios import qfs_testbed_scenario
from repro.workloads.multitier import build_multitier

EXPERIMENT = "ablations"


def _qfs_problem():
    scenario = qfs_testbed_scenario(uniform=False)
    cloud = scenario.build_cloud()
    state = scenario.build_state(cloud, 0)
    topology = scenario.build_topology(12, 0)
    objective = Objective.for_topology(topology, cloud, 0.99, 0.01)
    return topology, cloud, state, objective


def _multitier_problem(size: int = 25, racks: int = 12):
    cloud = build_datacenter(num_racks=racks)
    state = DataCenterState(cloud)
    apply_table_iv_load(state, seed=0)
    topology = build_multitier(total_vms=size, heterogeneous=True)
    objective = Objective.for_topology(topology, cloud)
    return topology, cloud, state, objective


class TestEstimateAblation:
    def test_estimate_vs_myopic(self, benchmark, collected):
        """EG's full estimate vs. a 1-node myopic one on heterogeneous
        meshes (3 seeds). Greedy lookahead is not per-instance monotone --
        the myopic variant occasionally lucks into a better placement --
        but on average the estimate yields better objectives and, more
        importantly, far fewer dead-end recoveries (restart-cascade
        switches), which is what keeps EG viable on dense topologies."""
        from statistics import mean

        from repro.datacenter.builder import build_datacenter
        from repro.datacenter.loadgen import apply_table_iv_load
        from repro.datacenter.state import DataCenterState
        from repro.workloads.mesh import build_mesh

        cloud = build_datacenter(num_racks=12)
        myopic_config = GreedyConfig(
            max_full_candidates=12,
            estimator=EstimatorConfig(max_nodes=1, optimistic_colocation=True),
        )
        full_config = GreedyConfig(
            max_full_candidates=12, estimator=EstimatorConfig(max_nodes=24)
        )

        def run_seeds(config):
            results = []
            for seed in (0, 1, 2):
                state = DataCenterState(cloud)
                apply_table_iv_load(state, seed=seed)
                topology = build_mesh(
                    total_vms=50, heterogeneous=True, seed=seed
                )
                objective = Objective.for_topology(topology, cloud)
                results.append(
                    EG(config).place(topology, cloud, state, objective)
                )
            return results

        full = run_once(benchmark, lambda: run_seeds(full_config))
        myopic = run_seeds(myopic_config)
        collected.setdefault(EXPERIMENT, {})["estimate"] = (full, myopic)
        assert mean(r.objective_value for r in full) <= mean(
            r.objective_value for r in myopic
        )
        assert sum(r.stats.restarts for r in full) <= sum(
            r.stats.restarts for r in myopic
        )


class TestDedupAblation:
    def test_dedup_speedup_and_equivalence(self, benchmark, collected):
        """On a 192-host data center, hundreds of hosts collapse into a
        handful of equivalence classes; the result is bit-identical."""
        topology, cloud, state, objective = _multitier_problem()
        with_dedup = run_once(
            benchmark,
            lambda: EG(GreedyConfig(dedup=True)).place(
                topology, cloud, state, objective
            ),
        )
        without = EG(GreedyConfig(dedup=False)).place(
            topology, cloud, state, objective
        )
        collected.setdefault(EXPERIMENT, {})["dedup"] = (with_dedup, without)
        assert with_dedup.objective_value == pytest.approx(
            without.objective_value, abs=1e-9
        )
        assert (
            with_dedup.stats.candidates_scored
            < without.stats.candidates_scored
        )


class TestSymmetryAblation:
    def test_symmetry_reduction_prunes_permutations(
        self, benchmark, collected
    ):
        topology, cloud, state, objective = _qfs_problem()
        with_symmetry = run_once(
            benchmark,
            lambda: BAStar(symmetry_reduction=True, max_expansions=150).place(
                topology, cloud, state, objective
            ),
        )
        without = BAStar(symmetry_reduction=False, max_expansions=150).place(
            topology, cloud, state, objective
        )
        collected.setdefault(EXPERIMENT, {})["symmetry"] = (
            with_symmetry,
            without,
        )
        # same quality within the expansion budget, never worse
        assert (
            with_symmetry.objective_value <= without.objective_value + 1e-9
        )


class TestReport:
    def test_ablation_report(self, benchmark, collected):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        results = collected.get(EXPERIMENT, {})
        assert len(results) == 3, "run the whole module"
        from statistics import mean

        lines = ["Ablations:"]
        full, myopic = results["estimate"]
        lines.append(
            "  estimate lookahead (mesh het-50, 3 seeds): mean objective "
            f"{mean(r.objective_value for r in full):.4f} vs myopic "
            f"{mean(r.objective_value for r in myopic):.4f}; restarts "
            f"{sum(r.stats.restarts for r in full)} vs "
            f"{sum(r.stats.restarts for r in myopic)}"
        )
        with_dedup, without = results["dedup"]
        lines.append(
            "  host-class dedup:   "
            f"{with_dedup.stats.candidates_scored} vs "
            f"{without.stats.candidates_scored} candidates scored "
            f"({without.runtime_s / max(with_dedup.runtime_s, 1e-9):.1f}x "
            "runtime)"
        )
        with_sym, without_sym = results["symmetry"]
        lines.append(
            "  symmetry reduction: objective "
            f"{with_sym.objective_value:.4f} vs {without_sym.objective_value:.4f} "
            f"at equal expansion budget"
        )
        save_report(EXPERIMENT, "\n".join(lines))
