"""Churn experiment (ours): schedulers under tenant arrivals/departures.

Not in the paper, but the natural operator-facing consequence of its
thesis: replay one Poisson tenant stream against one data center with
each algorithm and compare admissions and the bandwidth bill. Expected
shape: every algorithm sees the same stream; EGC packs compute tightest
(never fewer admissions than the bandwidth-aware schedulers on
compute-bound streams) while EG reserves far less network bandwidth for
the tenants it admits -- Table I's trade-off, integrated over time.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.core.scheduler import Ostro
from repro.datacenter.builder import build_datacenter
from repro.errors import PlacementError
from repro.sim.arrivals import WorkloadTrace, default_app_factory, replay

EXPERIMENT = "churn"
ALGORITHMS = ("egc", "egbw", "eg")


def _trace():
    return WorkloadTrace.poisson(
        arrivals=40,
        app_factory=default_app_factory,
        mean_interarrival_s=15,
        mean_lifetime_s=900,
        seed=42,
    )


def _bandwidth_bill(trace, cloud, algorithm):
    """Total reserved bandwidth summed over admitted tenants."""
    ostro = Ostro(cloud)
    total = 0.0
    admitted = 0
    for event in trace.events:
        if event.kind != "arrive":
            continue
        try:
            result = ostro.place(
                trace.topologies[event.app_id], algorithm=algorithm
            )
        except PlacementError:
            continue
        admitted += 1
        total += result.reserved_bw_mbps
    return total, admitted


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_churn(benchmark, collected, algorithm):
    cloud = build_datacenter(num_racks=2, hosts_per_rack=8)
    trace = _trace()
    report = run_once(
        benchmark, lambda: replay(trace, cloud, algorithm=algorithm)
    )
    bill, _ = _bandwidth_bill(trace, cloud, algorithm)
    collected.setdefault(EXPERIMENT, {})[algorithm] = (report, bill)
    assert report.arrivals == 40


def test_churn_report(benchmark, collected):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = collected.get(EXPERIMENT, {})
    assert len(results) == len(ALGORITHMS), "run the whole module"
    lines = [
        "Churn: one Poisson tenant stream (40 tenants, hot 128-core cloud) "
        "replayed per algorithm",
        f"{'algorithm':>9}  {'accepted':>8}  {'acceptance':>10}  "
        f"{'peak cpu':>8}  {'bw bill (Gbps)':>14}",
    ]
    for algorithm in ALGORITHMS:
        report, bill = results[algorithm]
        lines.append(
            f"{algorithm:>9}  {report.accepted:8d}  "
            f"{report.acceptance_rate:10.1%}  "
            f"{report.peak_cpu_used_frac:8.1%}  {bill / 1000:14.2f}"
        )
    save_report(EXPERIMENT, "\n".join(lines))
    eg_report, eg_bill = results["eg"]
    egc_report, egc_bill = results["egc"]
    # the integrated Table-I trade-off: EG pays (much) less bandwidth for
    # a comparable number of admissions
    assert eg_bill < egc_bill
    assert eg_report.accepted >= 0.8 * egc_report.accepted