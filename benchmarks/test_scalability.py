"""Scalability of the scheduler with data-center size (Section II-C).

The paper's headline scalability claim: the algorithms "handle the
placement of hundreds of VMs and volumes across several thousands of host
servers". This bench fixes the workload (50-VM heterogeneous multi-tier)
and grows the data center from 384 to 2400 hosts (the paper's full scale),
measuring EG's runtime and showing the exact host equivalence-class dedup
is what keeps candidate evaluation from scaling with raw host count.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once, save_report
from repro.core.greedy import EG
from repro.core.objective import Objective
from repro.datacenter.builder import build_datacenter
from repro.datacenter.loadgen import apply_table_iv_load
from repro.datacenter.state import DataCenterState
from repro.sim.scenarios import tuned_greedy_config
from repro.workloads.multitier import build_multitier

EXPERIMENT = "scalability"
RACK_COUNTS = (24, 48, 96, 150)  # 384 .. 2400 hosts


@pytest.mark.parametrize("racks", RACK_COUNTS)
def test_eg_scaling(benchmark, collected, racks):
    cloud = build_datacenter(num_racks=racks)
    state = DataCenterState(cloud)
    apply_table_iv_load(state, seed=0)
    topology = build_multitier(total_vms=50, heterogeneous=True)
    objective = Objective.for_topology(topology, cloud)
    result = run_once(
        benchmark,
        lambda: EG(tuned_greedy_config()).place(
            topology, cloud, state, objective
        ),
    )
    collected.setdefault(EXPERIMENT, {})[racks] = result
    assert set(result.placement.assignments) == set(topology.nodes)


def test_scalability_report(benchmark, collected):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    results = collected.get(EXPERIMENT, {})
    assert len(results) == len(RACK_COUNTS), "run the whole module"
    lines = [
        "Scalability: EG placing a 50-VM heterogeneous multitier topology "
        "as the data center grows (paper claim: thousands of hosts)",
        f"{'hosts':>6}  {'runtime (s)':>11}  {'candidates scored':>17}",
    ]
    for racks in RACK_COUNTS:
        result = results[racks]
        lines.append(
            f"{racks * 16:6d}  {result.runtime_s:11.2f}  "
            f"{result.stats.candidates_scored:17d}"
        )
    save_report(EXPERIMENT, "\n".join(lines))
    smallest = results[RACK_COUNTS[0]]
    largest = results[RACK_COUNTS[-1]]
    host_growth = RACK_COUNTS[-1] / RACK_COUNTS[0]  # 6.25x
    # The structural claim: the equivalence-class dedup keeps the number
    # of estimate-scored candidates independent of raw host count ...
    assert (
        largest.stats.candidates_scored == smallest.stats.candidates_scored
    )
    # ... so runtime grows at most with the linear feasibility scans
    # (1.5x slack absorbs wall-clock noise on shared machines)
    assert largest.runtime_s < smallest.runtime_s * host_growth * 1.5